//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no network registry, so this workspace ships
//! a dependency-free shim exposing the subset of the proptest 1.x API that
//! `tests/properties.rs` uses: the [`strategy::Strategy`] trait with `prop_map`,
//! integer-range strategies, [`collection::vec`], the [`proptest!`] macro
//! (including the `#![proptest_config(..)]` inner attribute),
//! [`prop_assert!`]/[`prop_assert_eq!`] and [`ProptestConfig`].
//!
//! Differences from the real crate, by design:
//! * inputs are drawn from a deterministic per-test SplitMix64 stream
//!   (seeded from the test name), so runs are reproducible but not
//!   externally seedable;
//! * there is **no shrinking** — a failing case panics with the assert
//!   message and the case index, nothing more;
//! * `prop_assert*` panic instead of returning `TestCaseError`.
//!
//! Swapping the real crate back in is a one-line change in the workspace
//! `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic test-case random number generator (SplitMix64).
pub mod test_runner {
    /// The per-test RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded from a test name and a case index, so every case
        /// of every test draws from its own reproducible stream.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`; `hi` must exceed `lo`.
        pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "empty range {lo}..{hi}");
            lo + self.next_u64() % (hi - lo)
        }
    }
}

/// Value-generation strategies (a generate-only subset: no shrinking).
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for producing random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A half-open range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element`-generated values with a length drawn from
    /// `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Asserts a condition inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tok:tt)*) => { assert!($($tok)*) };
}

/// Asserts equality inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tok:tt)*) => { assert_eq!($($tok)*) };
}

/// Asserts inequality inside a property (panics on failure in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tok:tt)*) => { assert_ne!($($tok)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that generates and checks `cases` inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(case),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let run = || $body;
                run();
            }
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    (($cfg:expr)) => {};
}

/// The customary glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..9, t in 0u8..3) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(t < 3);
        }

        /// Vec lengths respect fixed and ranged sizes.
        #[test]
        fn vec_sizes(fixed in collection::vec(0u8..2, 5), ranged in collection::vec(0u8..2, 1..4)) {
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!((1..4).contains(&ranged.len()));
        }

        /// prop_map applies its function.
        #[test]
        fn mapping(doubled in (0usize..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 19);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// The inner config attribute is honoured (smoke test).
        #[test]
        fn configured(x in 0usize..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u8..7, 4);
        let a = s.generate(&mut TestRng::for_case("t", 0));
        let b = s.generate(&mut TestRng::for_case("t", 0));
        assert_eq!(a, b);
    }
}
