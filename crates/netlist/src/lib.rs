//! # simap-netlist
//!
//! Gate-level circuits for speed-independent synthesis: SOP cells and
//! Muller C elements wired into the standard-C architecture, the paper's
//! §4 literal/C-element cost model, the non-SI `tech_decomp` baseline, and
//! a speed-independence verifier that composes a circuit with its
//! specification state graph under the unbounded gate delay model and
//! checks semi-modularity.
//!
//! ```
//! use simap_netlist::{Circuit, sop_gate};
//! use simap_boolean::{Cover, Literal};
//! use simap_sg::SignalId;
//!
//! let mut circuit = Circuit::new();
//! let a = circuit.add_net("a", Some(SignalId(0)));
//! let y = circuit.add_net("y", Some(SignalId(1)));
//! let buf = Cover::literal(Literal::pos(0));
//! circuit.add_gate(sop_gate("buf", &buf, |_| a, y))?;
//! assert_eq!(circuit.literal_cost(), 1);
//! # Ok::<(), simap_netlist::CircuitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod composition;
pub mod decomp;
pub mod gate;
pub mod library;
pub mod sim;
pub mod verify;
pub mod verilog;

pub use circuit::{remap_cover, sop_gate, Circuit, CircuitError, Net};
pub use composition::{Composition, Move, NetValues};
pub use decomp::{tech_decomp_cost, tech_decomp_literals, Cost};
pub use gate::{Gate, GateFunc, NetId};
pub use library::{classify, CellShape, Library};
pub use sim::{simulate, SimConfig, SimStats};
pub use verify::{verify_speed_independence, VerifyConfig, VerifyError, VerifyStats};
pub use verilog::to_verilog;
