//! Standard-cell library model.
//!
//! The paper measures gate complexity as "the number of literals required
//! to implement it as a sum-of-product gate, either complemented or not"
//! (§4): a library is characterized by the largest SOP cell it offers.
//! This module gives that limit a name, classifies covers onto concrete
//! cells (AND/OR/AOI/OAI/…) and lets netlists be reported against a
//! target library.

use crate::gate::{Gate, GateFunc};
use simap_boolean::Cover;
use std::fmt;

/// A concrete cell shape a cover maps onto.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellShape {
    /// Buffer or inverter (single literal).
    Buffer {
        /// Whether the literal is complemented.
        inverting: bool,
    },
    /// A single product term: AND/NAND with optional input inversions.
    And {
        /// Number of inputs.
        inputs: usize,
    },
    /// A single sum of single literals: OR/NOR with optional inversions.
    Or {
        /// Number of inputs.
        inputs: usize,
    },
    /// A general AND-OR (sum-of-products) cell.
    AndOr {
        /// Number of product terms.
        terms: usize,
        /// Total literals.
        literals: usize,
    },
    /// A Muller C element.
    CElement,
    /// A constant tie cell.
    Constant {
        /// The tied value.
        value: bool,
    },
}

impl fmt::Display for CellShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellShape::Buffer { inverting: false } => write!(f, "BUF"),
            CellShape::Buffer { inverting: true } => write!(f, "INV"),
            CellShape::And { inputs } => write!(f, "AND{inputs}"),
            CellShape::Or { inputs } => write!(f, "OR{inputs}"),
            CellShape::AndOr { terms, literals } => write!(f, "AO{terms}x{literals}"),
            CellShape::CElement => write!(f, "C2"),
            CellShape::Constant { value } => write!(f, "TIE{}", u8::from(*value)),
        }
    }
}

/// Classifies a cover onto the cell shape that implements it.
pub fn classify(cover: &Cover) -> CellShape {
    if cover.is_zero() {
        return CellShape::Constant { value: false };
    }
    if cover.is_one() {
        return CellShape::Constant { value: true };
    }
    let cubes = cover.cubes();
    if cubes.len() == 1 {
        let lits = cubes[0].literal_count();
        if lits == 1 {
            let lit = cubes[0].literals().next().expect("one literal");
            return CellShape::Buffer { inverting: !lit.phase };
        }
        return CellShape::And { inputs: lits };
    }
    if cubes.iter().all(|c| c.literal_count() == 1) {
        return CellShape::Or { inputs: cubes.len() };
    }
    CellShape::AndOr { terms: cubes.len(), literals: cover.literal_count() }
}

/// A bounded-complexity standard-cell library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    /// Library name (for reports).
    pub name: String,
    /// The largest SOP cell: total literals, complemented or not (§4).
    pub max_literals: usize,
    /// Whether the library provides C elements (asynchronous libraries
    /// do; a plain CMOS library would emulate them with feedback).
    pub has_c_elements: bool,
}

impl Library {
    /// The 2-literal worst-case library ("two-input gates are a standard
    /// worst case against which the performance of a decomposition
    /// algorithm can be measured", §3).
    pub fn two_input() -> Self {
        Library { name: "2-input".into(), max_literals: 2, has_c_elements: true }
    }

    /// A 3-literal library.
    pub fn three_input() -> Self {
        Library { name: "3-input".into(), max_literals: 3, has_c_elements: true }
    }

    /// A 4-literal library (typical AOI22-class cells).
    pub fn four_input() -> Self {
        Library { name: "4-input".into(), max_literals: 4, has_c_elements: true }
    }

    /// Whether one gate fits the library.
    pub fn admits(&self, gate: &Gate) -> bool {
        match &gate.func {
            GateFunc::Sop(cover) => cover.literal_count() <= self.max_literals,
            GateFunc::CElement => self.has_c_elements,
        }
    }

    /// Gates of `circuit` that do not fit, with their shapes.
    pub fn misfits<'a>(&self, circuit: &'a crate::Circuit) -> Vec<(&'a Gate, CellShape)> {
        circuit
            .gates()
            .iter()
            .filter(|g| !self.admits(g))
            .map(|g| {
                let shape = match &g.func {
                    GateFunc::Sop(c) => classify(c),
                    GateFunc::CElement => CellShape::CElement,
                };
                (g, shape)
            })
            .collect()
    }

    /// A cell-usage report: shape → count.
    pub fn cell_report(&self, circuit: &crate::Circuit) -> Vec<(CellShape, usize)> {
        let mut counts: Vec<(CellShape, usize)> = Vec::new();
        for g in circuit.gates() {
            let shape = match &g.func {
                GateFunc::Sop(c) => classify(c),
                GateFunc::CElement => CellShape::CElement,
            };
            match counts.iter_mut().find(|(s, _)| *s == shape) {
                Some((_, n)) => *n += 1,
                None => counts.push((shape, 1)),
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use simap_boolean::{Cube, Literal};

    fn cover(cubes: &[&[(usize, bool)]]) -> Cover {
        Cover::from_cubes(cubes.iter().map(|lits| {
            Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).expect("cube")
        }))
    }

    #[test]
    fn classification() {
        assert_eq!(classify(&Cover::zero()), CellShape::Constant { value: false });
        assert_eq!(classify(&Cover::one()), CellShape::Constant { value: true });
        assert_eq!(classify(&cover(&[&[(0, true)]])), CellShape::Buffer { inverting: false });
        assert_eq!(classify(&cover(&[&[(0, false)]])), CellShape::Buffer { inverting: true });
        assert_eq!(classify(&cover(&[&[(0, true), (1, false)]])), CellShape::And { inputs: 2 });
        assert_eq!(
            classify(&cover(&[&[(0, true)], &[(1, true)], &[(2, false)]])),
            CellShape::Or { inputs: 3 }
        );
        assert_eq!(
            classify(&cover(&[&[(0, true), (1, true)], &[(2, true), (3, true)]])),
            CellShape::AndOr { terms: 2, literals: 4 }
        );
    }

    #[test]
    fn shape_names() {
        assert_eq!(format!("{}", CellShape::And { inputs: 3 }), "AND3");
        assert_eq!(format!("{}", CellShape::Buffer { inverting: true }), "INV");
        assert_eq!(format!("{}", CellShape::CElement), "C2");
        assert_eq!(format!("{}", CellShape::AndOr { terms: 2, literals: 4 }), "AO2x4");
    }

    #[test]
    fn admits_and_misfits() {
        let lib = Library::two_input();
        let mut c = Circuit::new();
        let a = c.add_net("a", None);
        let b = c.add_net("b", None);
        let x = c.add_net("x", None);
        let y = c.add_net("y", None);
        let and2 = cover(&[&[(0, true), (1, true)]]);
        let and3ish = cover(&[&[(0, true), (1, true)], &[(0, true), (1, false)]]);
        c.add_gate(crate::circuit::sop_gate("g1", &and2, |v| [a, b][v], x)).expect("fresh");
        c.add_gate(crate::circuit::sop_gate("g2", &and3ish, |v| [a, b][v], y)).expect("fresh");
        assert_eq!(lib.misfits(&c).len(), 1);
        assert!(Library::four_input().misfits(&c).is_empty());
        let report = lib.cell_report(&c);
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn c_element_availability() {
        let mut lib = Library::two_input();
        let mut c = Circuit::new();
        let s = c.add_net("s", None);
        let r = c.add_net("r", None);
        let q = c.add_net("q", None);
        c.add_gate(Gate {
            name: "c".into(),
            func: GateFunc::CElement,
            fanin: vec![s, r],
            output: q,
        })
        .expect("fresh");
        assert!(lib.misfits(&c).is_empty());
        lib.has_c_elements = false;
        assert_eq!(lib.misfits(&c).len(), 1);
    }
}
