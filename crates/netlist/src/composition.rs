//! The closed system "circuit ∥ specification-as-environment" under the
//! unbounded gate delay model — shared by the exhaustive verifier
//! ([`crate::verify`]) and the randomized simulator ([`crate::sim`]).

use crate::circuit::Circuit;
use crate::gate::{Gate, NetId};
use crate::verify::VerifyError;
use simap_sg::{Event, SignalKind, StateGraph, StateId};

/// A packed valuation of every net.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NetValues(Vec<u64>);

impl NetValues {
    /// All-zero valuation for `n` nets.
    pub fn new(n: usize) -> Self {
        NetValues(vec![0; n.div_ceil(64)])
    }

    /// Value of a net.
    pub fn get(&self, n: NetId) -> bool {
        self.0[n.0 / 64] >> (n.0 % 64) & 1 == 1
    }

    /// Sets a net.
    pub fn set(&mut self, n: NetId, v: bool) {
        if v {
            self.0[n.0 / 64] |= 1 << (n.0 % 64);
        } else {
            self.0[n.0 / 64] &= !(1 << (n.0 % 64));
        }
    }

    /// Toggles a net.
    pub fn toggle(&mut self, n: NetId) {
        self.0[n.0 / 64] ^= 1 << (n.0 % 64);
    }
}

/// One enabled action of the composition.
#[derive(Debug, Clone)]
pub struct Move {
    /// Human-readable description (for diagnostics).
    pub description: String,
    /// Index of the firing gate, `None` for environment (input) moves.
    pub fired_gate: Option<usize>,
    /// Specification state after the move.
    pub spec_next: StateId,
    /// Net valuation after the move.
    pub vals_next: NetValues,
}

/// The composition context: net↔signal maps plus the gate list.
#[derive(Debug)]
pub struct Composition<'a> {
    /// The circuit under verification.
    pub circuit: &'a Circuit,
    /// The specification acting as environment.
    pub sg: &'a StateGraph,
    signal_net: Vec<NetId>,
    net_signal: Vec<Option<usize>>,
}

impl<'a> Composition<'a> {
    /// Builds the composition, checking that every specification signal
    /// has a net.
    ///
    /// # Errors
    /// [`VerifyError::MissingNet`] when a signal is unmapped.
    pub fn new(circuit: &'a Circuit, sg: &'a StateGraph) -> Result<Self, VerifyError> {
        let mut signal_net = Vec::with_capacity(sg.signal_count());
        for (i, sig) in sg.signals().iter().enumerate() {
            match circuit.net_of_signal(simap_sg::SignalId(i)) {
                Some(n) => signal_net.push(n),
                None => return Err(VerifyError::MissingNet { signal: sig.name.clone() }),
            }
        }
        let mut net_signal = vec![None; circuit.nets().len()];
        for (i, &n) in signal_net.iter().enumerate() {
            net_signal[n.0] = Some(i);
        }
        Ok(Composition { circuit, sg, signal_net, net_signal })
    }

    /// The initial valuation: signal nets pinned to the initial code,
    /// internal nets stabilized by bounded fixpoint sweeps.
    ///
    /// # Errors
    /// [`VerifyError::UnstableInit`] when the sweeps do not converge.
    pub fn initial_values(&self) -> Result<NetValues, VerifyError> {
        let mut init = NetValues::new(self.circuit.nets().len());
        let init_code = self.sg.code(self.sg.initial());
        for (i, &n) in self.signal_net.iter().enumerate() {
            init.set(n, init_code >> i & 1 == 1);
        }
        let gates = self.circuit.gates();
        for _ in 0..=gates.len() {
            let mut changed = false;
            for g in gates {
                if self.net_signal[g.output.0].is_some() {
                    continue;
                }
                let cur = init.get(g.output);
                let next = g.eval(&|n| init.get(n), cur);
                if next != cur {
                    init.set(g.output, next);
                    changed = true;
                }
            }
            if !changed {
                return Ok(init);
            }
        }
        Err(VerifyError::UnstableInit)
    }

    /// Whether a gate is excited (next output ≠ current output).
    pub fn excited(&self, vals: &NetValues, gate: &Gate) -> bool {
        gate.eval(&|n| vals.get(n), vals.get(gate.output)) != vals.get(gate.output)
    }

    /// Indices of all excited gates.
    pub fn excited_gates(&self, vals: &NetValues) -> Vec<usize> {
        (0..self.circuit.gates().len())
            .filter(|&i| self.excited(vals, &self.circuit.gates()[i]))
            .collect()
    }

    /// Enumerates every enabled move of the composition.
    ///
    /// # Errors
    /// [`VerifyError::UnexpectedOutput`] when an excited gate would fire an
    /// output transition the specification does not allow.
    pub fn moves(&self, spec: StateId, vals: &NetValues) -> Result<Vec<Move>, VerifyError> {
        let mut moves = Vec::new();
        // Environment moves.
        for &(e, t) in self.sg.succ(spec) {
            if self.sg.signals()[e.signal.0].kind != SignalKind::Input {
                continue;
            }
            let mut next = vals.clone();
            next.toggle(self.signal_net[e.signal.0]);
            moves.push(Move {
                description: format!("input {}", self.sg.event_name(e)),
                fired_gate: None,
                spec_next: t,
                vals_next: next,
            });
        }
        // Circuit moves.
        for (gi, g) in self.circuit.gates().iter().enumerate() {
            if !self.excited(vals, g) {
                continue;
            }
            let rising = !vals.get(g.output);
            let mut next = vals.clone();
            next.toggle(g.output);
            match self.net_signal[g.output.0] {
                Some(sig) => {
                    let ev = Event { signal: simap_sg::SignalId(sig), rising };
                    match self.sg.fire(spec, ev) {
                        Some(t) => moves.push(Move {
                            description: format!("output {}", self.sg.event_name(ev)),
                            fired_gate: Some(gi),
                            spec_next: t,
                            vals_next: next,
                        }),
                        None => {
                            return Err(VerifyError::UnexpectedOutput {
                                event: self.sg.event_name(ev),
                            })
                        }
                    }
                }
                None => moves.push(Move {
                    description: format!("internal {}", g.name),
                    fired_gate: Some(gi),
                    spec_next: spec,
                    vals_next: next,
                }),
            }
        }
        Ok(moves)
    }

    /// Semi-modularity check for one move: every excited gate other than
    /// the firing one must stay excited.
    ///
    /// # Errors
    /// [`VerifyError::Disabled`] naming the hazard.
    pub fn check_semi_modularity(
        &self,
        excited_before: &[usize],
        mv: &Move,
    ) -> Result<(), VerifyError> {
        for &gi in excited_before {
            if Some(gi) == mv.fired_gate {
                continue;
            }
            if !self.excited(&mv.vals_next, &self.circuit.gates()[gi]) {
                return Err(VerifyError::Disabled {
                    gate: self.circuit.gates()[gi].name.clone(),
                    by: mv.description.clone(),
                });
            }
        }
        Ok(())
    }
}
