//! Non-speed-independent decomposition baseline: the SIS
//! `tech_decomp -a <i>` equivalent used by Table 1's "non-SI" cost column.
//!
//! Each cover gate is factored ([`simap_boolean::good_factor`]) and its
//! tree realized with gates of at most `fanin_limit` inputs, **without**
//! any hazard analysis. The cost model is the paper's: total number of
//! literals (gate input pins) of the combinational gates, plus the number
//! of C elements (reported separately; a C element is roughly a 3-input
//! gate in area, §4).

use simap_boolean::{good_factor, Cover, Factored};

/// Cost of a circuit in the paper's §4 model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total literals (gate input pins) of combinational gates.
    pub literals: usize,
    /// Number of C elements.
    pub c_elements: usize,
}

impl std::fmt::Display for Cost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.literals, self.c_elements)
    }
}

impl std::ops::Add for Cost {
    type Output = Cost;

    fn add(self, other: Cost) -> Cost {
        Cost {
            literals: self.literals + other.literals,
            c_elements: self.c_elements + other.c_elements,
        }
    }
}

impl Cost {
    /// Approximate area with a C element counted as a 3-input gate (§4).
    pub fn area(self) -> usize {
        self.literals + 3 * self.c_elements
    }
}

/// Number of `fanin_limit`-input gates needed to realize one `k`-ary node.
fn gates_for_arity(k: usize, fanin_limit: usize) -> usize {
    if k <= 1 {
        0
    } else {
        (k - 1).div_ceil(fanin_limit - 1)
    }
}

/// Total gate input pins to realize one `k`-ary node with
/// `fanin_limit`-input gates (inputs plus internal tree connections).
fn pins_for_arity(k: usize, fanin_limit: usize) -> usize {
    if k <= 1 {
        k
    } else {
        k + gates_for_arity(k, fanin_limit) - 1
    }
}

fn tree_pins(t: &Factored, fanin_limit: usize) -> usize {
    match t {
        Factored::Literal(_) | Factored::Const(_) => 0,
        Factored::And(xs) | Factored::Or(xs) => {
            let children: usize = xs.iter().map(|x| tree_pins(x, fanin_limit)).sum();
            children + pins_for_arity(xs.len(), fanin_limit)
        }
    }
}

/// Literal cost of realizing `cover` with bounded-fanin gates after
/// factoring, ignoring speed-independence.
///
/// # Panics
/// Panics if `fanin_limit < 2`.
pub fn tech_decomp_literals(cover: &Cover, fanin_limit: usize) -> usize {
    assert!(fanin_limit >= 2, "fanin limit must be at least 2");
    let tree = good_factor(cover);
    match &tree {
        Factored::Literal(_) => 1, // a buffer/wire: one pin
        Factored::Const(_) => 0,
        _ => tree_pins(&tree, fanin_limit),
    }
}

/// Non-SI decomposition cost of a whole implementation given its cover
/// gates and C-element count.
pub fn tech_decomp_cost<'a>(
    covers: impl IntoIterator<Item = &'a Cover>,
    c_elements: usize,
    fanin_limit: usize,
) -> Cost {
    let literals = covers.into_iter().map(|c| tech_decomp_literals(c, fanin_limit)).sum::<usize>();
    Cost { literals, c_elements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_boolean::{Cube, Literal};

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    #[test]
    fn arity_math() {
        assert_eq!(gates_for_arity(2, 2), 1);
        assert_eq!(gates_for_arity(6, 2), 5);
        assert_eq!(gates_for_arity(6, 4), 2);
        assert_eq!(pins_for_arity(6, 2), 10); // 5 AND2 gates = 10 pins
        assert_eq!(pins_for_arity(6, 4), 7); // AND4 + AND3 = 7 pins
        assert_eq!(pins_for_arity(1, 2), 1);
    }

    #[test]
    fn six_literal_cube_costs_ten_at_two() {
        let f = Cover::from_cube(Cube::from_literals((0..6).map(Literal::pos)).unwrap());
        assert_eq!(tech_decomp_literals(&f, 2), 10);
        assert_eq!(tech_decomp_literals(&f, 4), 7);
        assert_eq!(tech_decomp_literals(&f, 6), 6);
    }

    #[test]
    fn factoring_reduces_cost() {
        // ab + ac + ad = a(b + c + d): flat SOP would cost more.
        let f = Cover::from_cubes([
            cube(&[(0, true), (1, true)]),
            cube(&[(0, true), (2, true)]),
            cube(&[(0, true), (3, true)]),
        ]);
        // Factored: OR3 (b,c,d) then AND2: pins = (3+2-1) + 2 = 6.
        assert_eq!(tech_decomp_literals(&f, 2), 6);
    }

    #[test]
    fn whole_implementation_cost() {
        let set = Cover::from_cube(cube(&[(0, true), (1, true)]));
        let reset = Cover::from_cube(cube(&[(0, false), (1, false)]));
        let cost = tech_decomp_cost([&set, &reset], 1, 2);
        assert_eq!(cost, Cost { literals: 4, c_elements: 1 });
        assert_eq!(cost.area(), 7);
        assert_eq!(format!("{cost}"), "4/1");
    }

    #[test]
    fn trivial_covers() {
        assert_eq!(tech_decomp_literals(&Cover::one(), 2), 0);
        assert_eq!(tech_decomp_literals(&Cover::zero(), 2), 0);
        assert_eq!(tech_decomp_literals(&Cover::literal(Literal::pos(0)), 2), 1);
    }
}
