//! Gate-level circuits in the standard-C architecture (§2.2, Fig. 2).

use crate::gate::{Gate, GateFunc, NetId};
use simap_boolean::Cover;
use simap_sg::SignalId;
use std::collections::HashMap;
use std::fmt;

/// A named net, optionally bound to a specification signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// The specification signal this net carries, if any (interface and
    /// state-signal nets have one; first-level cover nets do not).
    pub signal: Option<SignalId>,
}

/// A gate-level circuit: nets, gates (each net driven by at most one
/// gate), and a mapping between nets and specification signals.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    nets: Vec<Net>,
    gates: Vec<Gate>,
    driver: HashMap<NetId, usize>,
    by_signal: HashMap<SignalId, NetId>,
}

/// Errors when assembling a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// Two gates drive the same net.
    MultipleDrivers(String),
    /// A gate references a net that does not exist.
    DanglingNet(usize),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            CircuitError::DanglingNet(i) => write!(f, "gate references unknown net #{i}"),
        }
    }
}

impl std::error::Error for CircuitError {}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    /// Adds a net; `signal` binds it to a specification signal.
    pub fn add_net(&mut self, name: impl Into<String>, signal: Option<SignalId>) -> NetId {
        let id = NetId(self.nets.len());
        self.nets.push(Net { name: name.into(), signal });
        if let Some(s) = signal {
            self.by_signal.insert(s, id);
        }
        id
    }

    /// Adds a gate.
    ///
    /// # Errors
    /// Fails when the output net already has a driver or a referenced net
    /// does not exist.
    pub fn add_gate(&mut self, gate: Gate) -> Result<(), CircuitError> {
        for n in gate.fanin.iter().chain(std::iter::once(&gate.output)) {
            if n.0 >= self.nets.len() {
                return Err(CircuitError::DanglingNet(n.0));
            }
        }
        if self.driver.contains_key(&gate.output) {
            return Err(CircuitError::MultipleDrivers(self.nets[gate.output.0].name.clone()));
        }
        self.driver.insert(gate.output, self.gates.len());
        self.gates.push(gate);
        Ok(())
    }

    /// The nets of the circuit.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// The gates of the circuit.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// The net bound to a specification signal.
    pub fn net_of_signal(&self, s: SignalId) -> Option<NetId> {
        self.by_signal.get(&s).copied()
    }

    /// The gate driving `net`, if any (primary inputs have none).
    pub fn driver_of(&self, net: NetId) -> Option<&Gate> {
        self.driver.get(&net).map(|&i| &self.gates[i])
    }

    /// Total SOP literals over all combinational gates.
    pub fn literal_cost(&self) -> usize {
        self.gates.iter().map(Gate::literal_count).sum()
    }

    /// Number of C elements.
    pub fn c_element_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_c_element()).count()
    }

    /// Largest combinational-gate literal count (the "most complex gate").
    pub fn max_gate_literals(&self) -> usize {
        self.gates.iter().map(Gate::literal_count).max().unwrap_or(0)
    }

    /// Histogram of combinational gates by literal count: `hist[n]` is the
    /// number of gates with exactly `n` literals (index 0 unused).
    pub fn gate_histogram(&self) -> Vec<usize> {
        let max = self.max_gate_literals();
        let mut hist = vec![0usize; max + 1];
        for g in &self.gates {
            if !g.is_c_element() {
                hist[g.literal_count()] += 1;
            }
        }
        hist
    }

    /// Logic depth per net: the longest gate chain from an undriven
    /// (primary-input) net, with C elements cutting feedback (their
    /// output depth counts the gate itself but cycles through them are
    /// not followed). Returns the maximum over all nets.
    pub fn logic_depth(&self) -> usize {
        // Iterative longest-path with cycle cutting: feedback in the
        // standard-C architecture always goes through a signal net driven
        // by a C element or a state-holding complex gate; treat any net
        // on a cycle as depth-0 source for the next round.
        let n = self.nets.len();
        let mut depth = vec![0usize; n];
        // Relax up to n times; cycles simply stop improving.
        for _ in 0..self.gates.len().min(64) {
            let mut changed = false;
            for g in &self.gates {
                let input_depth = g.fanin.iter().map(|f| depth[f.0]).max().unwrap_or(0);
                let candidate = input_depth + 1;
                if candidate > depth[g.output.0] && candidate <= self.gates.len() {
                    depth[g.output.0] = candidate;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Largest gate fanin in the circuit.
    pub fn max_fanin(&self) -> usize {
        self.gates.iter().map(|g| g.fanin.len()).max().unwrap_or(0)
    }

    /// Renders a readable netlist.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for g in &self.gates {
            let out_name = &self.nets[g.output.0].name;
            match &g.func {
                GateFunc::Sop(cover) => {
                    let names: Vec<String> =
                        g.fanin.iter().map(|n| self.nets[n.0].name.clone()).collect();
                    let _ =
                        writeln!(out, "{out_name} = {}", cover.display_with(|v| names[v].clone()));
                }
                GateFunc::CElement => {
                    let _ = writeln!(
                        out,
                        "{out_name} = C({}, {})",
                        self.nets[g.fanin[0].0].name, self.nets[g.fanin[1].0].name
                    );
                }
            }
        }
        out
    }
}

/// Builds a single-output SOP gate over the given fanin nets, remapping a
/// cover expressed in an arbitrary variable space via `var_to_net`.
///
/// `cover`'s support variables are looked up through `var_to_net` and
/// become the gate's fanin (in increasing variable order).
pub fn sop_gate(
    name: impl Into<String>,
    cover: &Cover,
    var_to_net: impl Fn(usize) -> NetId,
    output: NetId,
) -> Gate {
    let support = cover.support();
    let fanin: Vec<NetId> = support.iter().map(|&v| var_to_net(v)).collect();
    // Remap cover variables to local indices.
    let local = remap_cover(cover, &support);
    Gate { name: name.into(), func: GateFunc::Sop(local), fanin, output }
}

/// Remaps a cover's variables onto local indices `0..support.len()`.
pub fn remap_cover(cover: &Cover, support: &[usize]) -> Cover {
    use simap_boolean::{Cube, Literal};
    let pos_of = |v: usize| support.iter().position(|&s| s == v).expect("var in support");
    Cover::from_cubes(cover.cubes().iter().map(|c| {
        Cube::from_literals(c.literals().map(|l| Literal::new(pos_of(l.var), l.phase)))
            .expect("remapped cube stays consistent")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_boolean::{Cube, Literal};

    #[test]
    fn build_and_query() {
        let mut c = Circuit::new();
        let a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        let y = c.add_net("y", Some(SignalId(2)));
        let cover =
            Cover::from_cube(Cube::from_literals([Literal::pos(0), Literal::neg(1)]).unwrap());
        c.add_gate(Gate {
            name: "g0".into(),
            func: GateFunc::Sop(cover),
            fanin: vec![a, b],
            output: y,
        })
        .unwrap();
        assert_eq!(c.net_of_signal(SignalId(2)), Some(y));
        assert!(c.driver_of(y).is_some());
        assert!(c.driver_of(a).is_none());
        assert_eq!(c.literal_cost(), 2);
        assert_eq!(c.c_element_count(), 0);
        assert_eq!(c.gate_histogram(), vec![0, 0, 1]);
        assert!(c.render().contains("y ="));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut c = Circuit::new();
        let a = c.add_net("a", None);
        let y = c.add_net("y", None);
        let mk = |out| Gate {
            name: "g".into(),
            func: GateFunc::Sop(Cover::literal(Literal::pos(0))),
            fanin: vec![a],
            output: out,
        };
        c.add_gate(mk(y)).unwrap();
        assert!(matches!(c.add_gate(mk(y)), Err(CircuitError::MultipleDrivers(_))));
    }

    #[test]
    fn dangling_net_rejected() {
        let mut c = Circuit::new();
        let a = c.add_net("a", None);
        let g = Gate {
            name: "g".into(),
            func: GateFunc::Sop(Cover::literal(Literal::pos(0))),
            fanin: vec![a],
            output: NetId(42),
        };
        assert!(matches!(c.add_gate(g), Err(CircuitError::DanglingNet(42))));
    }

    #[test]
    fn sop_gate_remaps_support() {
        let mut c = Circuit::new();
        let n5 = c.add_net("x5", None);
        let n9 = c.add_net("x9", None);
        let out = c.add_net("out", None);
        // Cover over global vars 5 and 9.
        let cover =
            Cover::from_cube(Cube::from_literals([Literal::pos(5), Literal::neg(9)]).unwrap());
        let nets = [n5, n9];
        let g = sop_gate("g", &cover, |v| nets[if v == 5 { 0 } else { 1 }], out);
        assert_eq!(g.fanin, vec![n5, n9]);
        // Local function: var0 & !var1.
        let vals = |n: NetId| n == n5;
        assert!(g.eval(&vals, false));
    }
}
