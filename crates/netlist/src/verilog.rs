//! Structural Verilog export of mapped circuits.
//!
//! SOP gates become continuous assignments; C elements become instances
//! of a behavioural `celement` module (emitted once per file) with the
//! hold-on-both-high semantics of [`crate::gate::GateFunc::CElement`].
//! The output is meant for downstream consumption (simulation, LVS-style
//! diffing), not for re-synthesis.

use crate::circuit::Circuit;
use crate::gate::GateFunc;
use simap_sg::{SignalKind, StateGraph};
use std::fmt::Write as _;

/// Sanitizes a net name into a Verilog identifier.
fn ident(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_';
        if i == 0 && ch.is_ascii_digit() {
            out.push('n');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('n');
    }
    out
}

/// Emits a structural Verilog module for `circuit`, using `sg` to decide
/// port directions (inputs come from the specification's input signals;
/// every other specification signal is an output port).
pub fn to_verilog(circuit: &Circuit, sg: &StateGraph, module: &str) -> String {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    for (i, sig) in sg.signals().iter().enumerate() {
        let name = ident(&sig.name);
        match sig.kind {
            SignalKind::Input => inputs.push(name),
            // Internal signals (inserted during decomposition or CSC
            // repair) stay inside the module as wires.
            SignalKind::Internal => {}
            SignalKind::Output => {
                if circuit.net_of_signal(simap_sg::SignalId(i)).is_some() {
                    outputs.push(name);
                }
            }
        }
    }

    let mut body = String::new();
    let mut wires: Vec<String> = Vec::new();
    let mut uses_celement = false;

    for (gi, gate) in circuit.gates().iter().enumerate() {
        let out_name = ident(&circuit.nets()[gate.output.0].name);
        let is_port = inputs.contains(&out_name) || outputs.contains(&out_name);
        if !is_port && !wires.contains(&out_name) {
            wires.push(out_name.clone());
        }
        match &gate.func {
            GateFunc::Sop(cover) => {
                let expr = if cover.is_zero() {
                    "1'b0".to_string()
                } else if cover.is_one() {
                    "1'b1".to_string()
                } else {
                    let terms: Vec<String> = cover
                        .cubes()
                        .iter()
                        .map(|cube| {
                            let lits: Vec<String> = cube
                                .literals()
                                .map(|l| {
                                    let n = ident(&circuit.nets()[gate.fanin[l.var].0].name);
                                    if l.phase {
                                        n
                                    } else {
                                        format!("~{n}")
                                    }
                                })
                                .collect();
                            if lits.len() == 1 {
                                lits.into_iter().next().expect("len checked")
                            } else {
                                format!("({})", lits.join(" & "))
                            }
                        })
                        .collect();
                    terms.join(" | ")
                };
                let _ = writeln!(body, "  assign {out_name} = {expr};");
            }
            GateFunc::CElement => {
                uses_celement = true;
                let set = ident(&circuit.nets()[gate.fanin[0].0].name);
                let reset = ident(&circuit.nets()[gate.fanin[1].0].name);
                let _ = writeln!(
                    body,
                    "  celement u_c{gi} (.set({set}), .reset({reset}), .q({out_name}));"
                );
            }
        }
    }

    let mut out = String::new();
    if uses_celement {
        out.push_str(
            "// Muller C element with set/reset networks; holds when both\n\
             // inputs are transiently high (standard-C architecture cell).\n\
             module celement (input set, input reset, output reg q);\n\
             \x20 initial q = 1'b0;\n\
             \x20 always @(*) begin\n\
             \x20   if (set & ~reset) q = 1'b1;\n\
             \x20   else if (~set & reset) q = 1'b0;\n\
             \x20 end\n\
             endmodule\n\n",
        );
    }
    let mut ports: Vec<String> = Vec::new();
    ports.extend(inputs.iter().map(|n| format!("input {n}")));
    ports.extend(outputs.iter().map(|n| format!("output {n}")));
    let _ = writeln!(out, "module {} (", ident(module));
    let _ = writeln!(out, "  {}", ports.join(",\n  "));
    let _ = writeln!(out, ");");
    for w in &wires {
        let _ = writeln!(out, "  wire {w};");
    }
    out.push_str(&body);
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::sop_gate;
    use crate::gate::Gate;
    use simap_boolean::{Cover, Cube, Literal};
    use simap_sg::{Event, Signal, SignalId, StateGraphBuilder};

    fn handshake() -> StateGraph {
        let mut b = StateGraphBuilder::new(
            "hs",
            vec![Signal::new("req", SignalKind::Input), Signal::new("ack", SignalKind::Output)],
        )
        .unwrap();
        let s = [b.add_state(0b00), b.add_state(0b01), b.add_state(0b11), b.add_state(0b10)];
        b.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        b.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        b.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        b.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn buffer_module() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("req", Some(SignalId(0)));
        let b = c.add_net("ack", Some(SignalId(1)));
        c.add_gate(sop_gate("buf", &Cover::literal(Literal::pos(0)), |_| a, b)).unwrap();
        let v = to_verilog(&c, &sg, "hs");
        assert!(v.contains("module hs ("), "{v}");
        assert!(v.contains("input req"));
        assert!(v.contains("output ack"));
        assert!(v.contains("assign ack = req;"));
        assert!(!v.contains("module celement"), "no C element needed");
    }

    #[test]
    fn c_element_instantiation_and_sop() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("req", Some(SignalId(0)));
        let b = c.add_net("ack", Some(SignalId(1)));
        let set = c.add_net("ack_set", None);
        let reset = c.add_net("ack_reset", None);
        let and = Cover::from_cube(Cube::from_literals([Literal::pos(0)]).unwrap());
        let nand = Cover::from_cube(Cube::from_literals([Literal::neg(0)]).unwrap());
        c.add_gate(sop_gate("s", &and, |_| a, set)).unwrap();
        c.add_gate(sop_gate("r", &nand, |_| a, reset)).unwrap();
        c.add_gate(Gate {
            name: "c".into(),
            func: GateFunc::CElement,
            fanin: vec![set, reset],
            output: b,
        })
        .unwrap();
        let v = to_verilog(&c, &sg, "hs");
        assert!(v.contains("module celement"));
        assert!(v.contains(".set(ack_set)"));
        assert!(v.contains("assign ack_reset = ~req;"));
        assert!(v.contains("wire ack_set;"));
    }

    #[test]
    fn identifier_sanitization() {
        assert_eq!(ident("mp-forward-pkt"), "mp_forward_pkt");
        assert_eq!(ident("3x"), "n3x");
        assert_eq!(ident(""), "n");
        assert_eq!(ident("ok_name9"), "ok_name9");
    }

    #[test]
    fn multi_cube_sop_renders_as_or_of_ands() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("req", Some(SignalId(0)));
        let b = c.add_net("ack", Some(SignalId(1)));
        let cover = Cover::from_cubes([
            Cube::from_literals([Literal::pos(0)]).unwrap(),
            Cube::from_literals([Literal::neg(0)]).unwrap(),
        ]);
        // A tautology as a 1-input function: renders as a 2-term OR.
        c.add_gate(sop_gate("t", &cover, |_| a, b)).unwrap();
        let v = to_verilog(&c, &sg, "hs");
        assert!(v.contains("assign ack = 1'b1;") || v.contains('|'), "{v}");
    }
}
