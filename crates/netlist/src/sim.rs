//! Randomized (Monte Carlo) simulation of the circuit ∥ specification
//! composition.
//!
//! The exhaustive verifier explores every interleaving; for circuits
//! whose composed state space is too large, repeated random walks with a
//! seeded scheduler still catch hazards, unexpected outputs and
//! deadlocks with high probability — the classic lightweight complement
//! used while debugging a mapper.

use crate::circuit::Circuit;
use crate::composition::Composition;
use crate::verify::VerifyError;
use simap_sg::StateGraph;

/// Configuration of a simulation campaign.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of independent random walks.
    pub runs: usize,
    /// Steps per walk.
    pub steps: usize,
    /// RNG seed (campaigns are fully deterministic given the seed).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { runs: 32, steps: 10_000, seed: 0x5eed_cafe_f00d_u64 }
    }
}

/// Statistics of a clean campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimStats {
    /// Total composed transitions executed.
    pub transitions: usize,
    /// Walks that were cut short because the specification terminated
    /// (possible only for acyclic specs).
    pub terminated_walks: usize,
}

/// A deterministic xorshift64* generator — enough for scheduling and
/// keeps the crate dependency-free.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Runs a randomized campaign; every step is checked for semi-modularity,
/// conformance and deadlock exactly like the exhaustive verifier.
///
/// # Errors
/// The first [`VerifyError`] encountered on any walk.
pub fn simulate(
    circuit: &Circuit,
    sg: &StateGraph,
    config: &SimConfig,
) -> Result<SimStats, VerifyError> {
    let comp = Composition::new(circuit, sg)?;
    let init = comp.initial_values()?;
    let mut rng = XorShift::new(config.seed);
    let mut transitions = 0usize;
    let mut terminated = 0usize;

    for _ in 0..config.runs {
        let mut spec = sg.initial();
        let mut vals = init.clone();
        for _ in 0..config.steps {
            let excited_now = comp.excited_gates(&vals);
            let moves = comp.moves(spec, &vals)?;
            if moves.is_empty() {
                if !sg.succ(spec).is_empty() {
                    return Err(VerifyError::Deadlock { spec_state: spec.0 });
                }
                terminated += 1;
                break;
            }
            let mv = &moves[rng.below(moves.len())];
            comp.check_semi_modularity(&excited_now, mv)?;
            spec = mv.spec_next;
            vals = mv.vals_next.clone();
            transitions += 1;
        }
    }
    Ok(SimStats { transitions, terminated_walks: terminated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::sop_gate;
    use crate::gate::{Gate, GateFunc};
    use simap_boolean::{Cover, Cube, Literal};
    use simap_sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};

    fn handshake() -> StateGraph {
        let mut b = StateGraphBuilder::new(
            "hs",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [b.add_state(0b00), b.add_state(0b01), b.add_state(0b11), b.add_state(0b10)];
        b.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        b.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        b.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        b.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn clean_circuit_simulates() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        c.add_gate(sop_gate("buf", &Cover::literal(Literal::pos(0)), |_| a, b)).unwrap();
        let stats = simulate(&c, &sg, &SimConfig::default()).expect("clean");
        assert!(stats.transitions > 1000);
    }

    #[test]
    fn deterministic_given_seed() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        c.add_gate(sop_gate("buf", &Cover::literal(Literal::pos(0)), |_| a, b)).unwrap();
        let cfg = SimConfig { runs: 4, steps: 500, seed: 7 };
        let s1 = simulate(&c, &sg, &cfg).expect("clean");
        let s2 = simulate(&c, &sg, &cfg).expect("clean");
        assert_eq!(s1, s2);
    }

    #[test]
    fn broken_circuit_caught_by_walks() {
        // An inverter in place of a buffer misfires immediately.
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        let inv = Cover::from_cube(Cube::from_literals([Literal::neg(0)]).unwrap());
        c.add_gate(sop_gate("inv", &inv, |_| a, b)).unwrap();
        assert!(simulate(&c, &sg, &SimConfig::default()).is_err());
    }

    #[test]
    fn stuck_gate_deadlocks() {
        let sg = handshake();
        let mut c = Circuit::new();
        let _a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        c.add_gate(Gate {
            name: "zero".into(),
            func: GateFunc::Sop(Cover::zero()),
            fanin: vec![],
            output: b,
        })
        .unwrap();
        let err = simulate(&c, &sg, &SimConfig::default()).unwrap_err();
        assert!(matches!(err, VerifyError::Deadlock { .. }));
    }

    #[test]
    fn agrees_with_exhaustive_verifier_on_suite_circuit() {
        // The simulator and the verifier must agree on a known-good
        // decomposed circuit.
        let stg = simap_stg_free_celement();
        let sg = stg;
        let mc = build_mc(&sg);
        let circuit = build(&sg, &mc);
        let sim = simulate(&circuit, &sg, &SimConfig { runs: 8, steps: 2000, seed: 3 });
        assert!(sim.is_ok(), "{sim:?}");
    }

    // Minimal local stand-ins to avoid a dev-dependency cycle on
    // simap-core: a 2-input C element spec and its standard-C circuit.
    fn simap_stg_free_celement() -> StateGraph {
        let mut bd = StateGraphBuilder::new(
            "c2",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Input),
                Signal::new("c", SignalKind::Output),
            ],
        )
        .unwrap();
        let s00 = bd.add_state(0b000);
        let s01 = bd.add_state(0b001);
        let s10 = bd.add_state(0b010);
        let s11 = bd.add_state(0b011);
        let t11 = bd.add_state(0b111);
        let t01 = bd.add_state(0b101);
        let t10 = bd.add_state(0b110);
        let t00 = bd.add_state(0b100);
        let (a, b, c) = (SignalId(0), SignalId(1), SignalId(2));
        bd.add_arc(s00, Event::rise(a), s01);
        bd.add_arc(s00, Event::rise(b), s10);
        bd.add_arc(s01, Event::rise(b), s11);
        bd.add_arc(s10, Event::rise(a), s11);
        bd.add_arc(s11, Event::rise(c), t11);
        bd.add_arc(t11, Event::fall(a), t10);
        bd.add_arc(t11, Event::fall(b), t01);
        bd.add_arc(t10, Event::fall(b), t00);
        bd.add_arc(t01, Event::fall(a), t00);
        bd.add_arc(t00, Event::fall(c), s00);
        bd.build(s00).unwrap()
    }

    struct MiniMc {
        set: Cover,
        reset: Cover,
    }

    fn build_mc(_sg: &StateGraph) -> MiniMc {
        MiniMc {
            set: Cover::from_cube(Cube::from_literals([Literal::pos(0), Literal::pos(1)]).unwrap()),
            reset: Cover::from_cube(
                Cube::from_literals([Literal::neg(0), Literal::neg(1)]).unwrap(),
            ),
        }
    }

    fn build(sg: &StateGraph, mc: &MiniMc) -> Circuit {
        let mut circuit = Circuit::new();
        let nets: Vec<_> = sg
            .signals()
            .iter()
            .enumerate()
            .map(|(i, s)| circuit.add_net(s.name.clone(), Some(SignalId(i))))
            .collect();
        let nset = circuit.add_net("set", None);
        let nreset = circuit.add_net("reset", None);
        circuit.add_gate(sop_gate("set", &mc.set, |v| nets[v], nset)).unwrap();
        circuit.add_gate(sop_gate("reset", &mc.reset, |v| nets[v], nreset)).unwrap();
        circuit
            .add_gate(Gate {
                name: "c".into(),
                func: GateFunc::CElement,
                fanin: vec![nset, nreset],
                output: nets[2],
            })
            .unwrap();
        circuit
    }
}
