//! Speed-independence verification of a gate-level circuit against its
//! specification, under the unbounded gate delay model.
//!
//! The verifier composes the circuit with the specification state graph
//! acting as its environment (inputs fire when the spec allows; outputs
//! must be expected by the spec) and explores every reachable composed
//! state checking **semi-modularity**: an excited gate may never return to
//! stability without firing — exactly Muller's hazard-freedom condition
//! the paper's implementations are verified with ("All the implementations
//! have been verified to be speed-independent", §4).

use crate::circuit::Circuit;
use simap_sg::{StateGraph, StateId};
use std::collections::HashMap;
use std::fmt;

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Maximum number of composed (spec, net-values) states.
    pub max_states: usize,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig { max_states: 2_000_000 }
    }
}

/// Statistics of a successful verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyStats {
    /// Composed states explored.
    pub states: usize,
    /// Composed transitions explored.
    pub transitions: usize,
}

/// A speed-independence violation (or exploration failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Gate `gate` was excited and became stable without firing after
    /// `by` occurred: a hazard.
    Disabled {
        /// Name of the disabled gate.
        gate: String,
        /// Description of the action that disabled it.
        by: String,
    },
    /// The circuit produced an output transition the specification does
    /// not allow in the current state.
    UnexpectedOutput {
        /// The offending event rendered as text.
        event: String,
    },
    /// No action is possible but the specification still expects events.
    Deadlock {
        /// Spec state where the composition got stuck.
        spec_state: usize,
    },
    /// A specification signal has no net in the circuit.
    MissingNet {
        /// The signal's name.
        signal: String,
    },
    /// Internal nets failed to stabilize in the initial state.
    UnstableInit,
    /// State limit exceeded — verification inconclusive.
    TooManyStates {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Disabled { gate, by } => write!(f, "gate `{gate}` disabled by {by}"),
            VerifyError::UnexpectedOutput { event } => {
                write!(f, "unexpected output transition {event}")
            }
            VerifyError::Deadlock { spec_state } => {
                write!(f, "deadlock in spec state {spec_state}")
            }
            VerifyError::MissingNet { signal } => {
                write!(f, "specification signal `{signal}` has no net")
            }
            VerifyError::UnstableInit => write!(f, "internal nets do not stabilize initially"),
            VerifyError::TooManyStates { limit } => {
                write!(f, "exceeded {limit} composed states (inconclusive)")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies that `circuit` is a speed-independent implementation of `sg`.
///
/// # Errors
/// Returns the first [`VerifyError`] found: a semi-modularity violation
/// (hazard), an unexpected output, a deadlock, or resource exhaustion.
pub fn verify_speed_independence(
    circuit: &Circuit,
    sg: &StateGraph,
    config: &VerifyConfig,
) -> Result<VerifyStats, VerifyError> {
    use crate::composition::{Composition, NetValues};

    let comp = Composition::new(circuit, sg)?;
    let init = comp.initial_values()?;

    // BFS over composed states.
    let mut index: HashMap<(StateId, NetValues), usize> = HashMap::new();
    let mut queue: Vec<(StateId, NetValues)> = Vec::new();
    index.insert((sg.initial(), init.clone()), 0);
    queue.push((sg.initial(), init));
    let mut transitions = 0usize;
    let mut head = 0;

    while head < queue.len() {
        let (spec, vals) = queue[head].clone();
        head += 1;

        let excited_now = comp.excited_gates(&vals);
        let moves = comp.moves(spec, &vals)?;
        if moves.is_empty() {
            if !sg.succ(spec).is_empty() {
                return Err(VerifyError::Deadlock { spec_state: spec.0 });
            }
            continue;
        }

        for mv in moves {
            comp.check_semi_modularity(&excited_now, &mv)?;
            transitions += 1;
            let key = (mv.spec_next, mv.vals_next);
            if !index.contains_key(&key) {
                if index.len() >= config.max_states {
                    return Err(VerifyError::TooManyStates { limit: config.max_states });
                }
                index.insert(key.clone(), queue.len());
                queue.push(key);
            }
        }
    }

    Ok(VerifyStats { states: queue.len(), transitions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::sop_gate;
    use simap_boolean::{Cover, Cube, Literal};
    use simap_sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};

    /// The a+ ; b+ ; a- ; b- handshake spec (a input, b output).
    fn handshake() -> StateGraph {
        let mut b = StateGraphBuilder::new(
            "handshake",
            vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
        )
        .unwrap();
        let s = [b.add_state(0b00), b.add_state(0b01), b.add_state(0b11), b.add_state(0b10)];
        b.add_arc(s[0], Event::rise(SignalId(0)), s[1]);
        b.add_arc(s[1], Event::rise(SignalId(1)), s[2]);
        b.add_arc(s[2], Event::fall(SignalId(0)), s[3]);
        b.add_arc(s[3], Event::fall(SignalId(1)), s[0]);
        b.build(s[0]).unwrap()
    }

    #[test]
    fn buffer_implements_handshake() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        // b = a (a single-literal SOP gate, i.e. a buffer).
        let cover = Cover::literal(Literal::pos(0));
        c.add_gate(sop_gate("buf", &cover, |_| a, b)).unwrap();
        let stats =
            verify_speed_independence(&c, &sg, &VerifyConfig::default()).expect("buffer is SI");
        assert!(stats.states >= 4);
    }

    #[test]
    fn inverted_buffer_is_rejected() {
        let sg = handshake();
        let mut c = Circuit::new();
        let a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        // b = !a : produces b+ when the spec does not expect it.
        let cover = Cover::from_cube(Cube::from_literals([Literal::neg(0)]).unwrap());
        c.add_gate(sop_gate("inv", &cover, |_| a, b)).unwrap();
        let err = verify_speed_independence(&c, &sg, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(err, VerifyError::UnexpectedOutput { .. } | VerifyError::UnstableInit));
    }

    #[test]
    fn missing_net_reported() {
        let sg = handshake();
        let mut c = Circuit::new();
        let _a = c.add_net("a", Some(SignalId(0)));
        // No net for signal b.
        let err = verify_speed_independence(&c, &sg, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(err, VerifyError::MissingNet { .. }));
    }

    #[test]
    fn stuck_circuit_deadlocks() {
        let sg = handshake();
        let mut c = Circuit::new();
        let _a = c.add_net("a", Some(SignalId(0)));
        let b = c.add_net("b", Some(SignalId(1)));
        // b = 0 forever: after a+ the spec expects b+ that never comes; the
        // constant gate is never excited, inputs exhaust, deadlock.
        let zero = Cover::zero();
        c.add_gate(crate::gate::Gate {
            name: "const0".into(),
            func: crate::gate::GateFunc::Sop(zero),
            fanin: vec![],
            output: b,
        })
        .unwrap();
        let err = verify_speed_independence(&c, &sg, &VerifyConfig::default()).unwrap_err();
        assert!(matches!(err, VerifyError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn c_element_circuit_verifies() {
        // Spec: c rises after both a and b rise; falls after both fall.
        let mut bd = StateGraphBuilder::new(
            "c2",
            vec![
                Signal::new("a", SignalKind::Input),
                Signal::new("b", SignalKind::Input),
                Signal::new("c", SignalKind::Output),
            ],
        )
        .unwrap();
        // Rising phase: subsets of {a,b} high with c=0; falling mirrored.
        let s00 = bd.add_state(0b000);
        let s01 = bd.add_state(0b001);
        let s10 = bd.add_state(0b010);
        let s11 = bd.add_state(0b011);
        let t11 = bd.add_state(0b111);
        let t01 = bd.add_state(0b101);
        let t10 = bd.add_state(0b110);
        let t00 = bd.add_state(0b100);
        let (a, b, cc) = (SignalId(0), SignalId(1), SignalId(2));
        bd.add_arc(s00, Event::rise(a), s01);
        bd.add_arc(s00, Event::rise(b), s10);
        bd.add_arc(s01, Event::rise(b), s11);
        bd.add_arc(s10, Event::rise(a), s11);
        bd.add_arc(s11, Event::rise(cc), t11);
        bd.add_arc(t11, Event::fall(a), t10);
        bd.add_arc(t11, Event::fall(b), t01);
        bd.add_arc(t10, Event::fall(b), t00);
        bd.add_arc(t01, Event::fall(a), t00);
        bd.add_arc(t00, Event::fall(cc), s00);
        let sg = bd.build(s00).unwrap();

        let mut c = Circuit::new();
        let na = c.add_net("a", Some(a));
        let nb = c.add_net("b", Some(b));
        let nset = c.add_net("set", None);
        let nreset = c.add_net("reset", None);
        let nc = c.add_net("c", Some(cc));
        let set_cover =
            Cover::from_cube(Cube::from_literals([Literal::pos(0), Literal::pos(1)]).unwrap());
        let reset_cover =
            Cover::from_cube(Cube::from_literals([Literal::neg(0), Literal::neg(1)]).unwrap());
        let nets = [na, nb];
        c.add_gate(sop_gate("set", &set_cover, |v| nets[v], nset)).unwrap();
        c.add_gate(sop_gate("reset", &reset_cover, |v| nets[v], nreset)).unwrap();
        c.add_gate(crate::gate::Gate {
            name: "c".into(),
            func: crate::gate::GateFunc::CElement,
            fanin: vec![nset, nreset],
            output: nc,
        })
        .unwrap();
        let stats = verify_speed_independence(&c, &sg, &VerifyConfig::default())
            .expect("standard-C C-element implementation is SI");
        assert!(stats.states > 8);
    }
}
