//! Gates: combinational SOP cells and Muller C elements.

use simap_boolean::Cover;
use std::fmt;

/// Index of a net in a [`crate::Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(pub usize);

/// The logic function of a gate.
///
/// Combinational gates carry a [`Cover`] over *local* variables
/// `0..fanin.len()`; variable `k` of the cover refers to `fanin[k]`. This
/// keeps gate functions independent of the circuit-wide net count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateFunc {
    /// A sum-of-products cell (AND/OR/AOI/complex gate).
    Sop(Cover),
    /// A Muller C element with a set and a reset input:
    /// `next(q) = set·reset̄ + q·(set + reset̄)`.
    ///
    /// The monotonous-cover conditions make the cover outputs one-hot
    /// *functionally*; under unbounded gate delays a stale cover wire can
    /// still transiently overlap the opposite network, so the cell holds
    /// its value when both inputs are 1 — the hazard-free semantics the
    /// standard-C architecture (§2.2) relies on.
    CElement,
}

/// A gate instance: a function, its input nets and its output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Human-readable instance name.
    pub name: String,
    /// The function; for [`GateFunc::CElement`] the fanin must be
    /// `[set, reset]`.
    pub func: GateFunc,
    /// Input nets, in local-variable order.
    pub fanin: Vec<NetId>,
    /// Output net.
    pub output: NetId,
}

impl Gate {
    /// Evaluates the gate's next output value given current net values.
    ///
    /// `value(net)` must return the present value of any net; `current` is
    /// the present output value (only used by the C element's hold state).
    pub fn eval(&self, value: &impl Fn(NetId) -> bool, current: bool) -> bool {
        match &self.func {
            GateFunc::Sop(cover) => {
                let mut code = 0u64;
                for (k, &n) in self.fanin.iter().enumerate() {
                    if value(n) {
                        code |= 1 << k;
                    }
                }
                cover.eval(code)
            }
            GateFunc::CElement => {
                let set = value(self.fanin[0]);
                let reset = value(self.fanin[1]);
                (set && !reset) || (current && (set || !reset))
            }
        }
    }

    /// Number of SOP literals (0 for C elements, which are costed
    /// separately).
    pub fn literal_count(&self) -> usize {
        match &self.func {
            GateFunc::Sop(c) => c.literal_count(),
            GateFunc::CElement => 0,
        }
    }

    /// Whether this gate is a C element.
    pub fn is_c_element(&self) -> bool {
        matches!(self.func, GateFunc::CElement)
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            GateFunc::Sop(c) => write!(f, "{} = {:?}", self.name, c),
            GateFunc::CElement => {
                write!(f, "{} = C(set=n{}, reset=n{})", self.name, self.fanin[0].0, self.fanin[1].0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simap_boolean::{Cube, Literal};

    fn and2(a: NetId, b: NetId, out: NetId) -> Gate {
        Gate {
            name: "and2".into(),
            func: GateFunc::Sop(Cover::from_cube(
                Cube::from_literals([Literal::pos(0), Literal::pos(1)]).unwrap(),
            )),
            fanin: vec![a, b],
            output: out,
        }
    }

    #[test]
    fn sop_eval_uses_local_variables() {
        let g = and2(NetId(7), NetId(3), NetId(9));
        let vals = |n: NetId| n == NetId(7) || n == NetId(3);
        assert!(g.eval(&vals, false));
        let vals2 = |n: NetId| n == NetId(7);
        assert!(!g.eval(&vals2, false));
        assert_eq!(g.literal_count(), 2);
        assert!(!g.is_c_element());
    }

    #[test]
    fn c_element_holds() {
        let g = Gate {
            name: "c".into(),
            func: GateFunc::CElement,
            fanin: vec![NetId(0), NetId(1)],
            output: NetId(2),
        };
        let none = |_: NetId| false;
        // set=0,reset=0: holds.
        assert!(!g.eval(&none, false));
        assert!(g.eval(&none, true));
        // set=1: rises.
        let set_on = |n: NetId| n == NetId(0);
        assert!(g.eval(&set_on, false));
        // reset=1: falls.
        let reset_on = |n: NetId| n == NetId(1);
        assert!(!g.eval(&reset_on, true));
        // both high (stale cover wire): holds.
        let both = |_: NetId| true;
        assert!(g.eval(&both, true));
        assert!(!g.eval(&both, false));
        assert_eq!(g.literal_count(), 0);
        assert!(g.is_c_element());
    }
}
