//! Sum-of-products covers (disjunctions of [`Cube`]s).

use crate::cube::{Cube, Literal};
use std::fmt;

/// A boolean function in sum-of-products form.
///
/// The empty cover is the constant 0; a cover containing the universal cube
/// is the constant 1.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Cover {
    cubes: Vec<Cube>,
}

impl Cover {
    /// The constant-0 function.
    pub fn zero() -> Self {
        Cover { cubes: Vec::new() }
    }

    /// The constant-1 function.
    pub fn one() -> Self {
        Cover { cubes: vec![Cube::top()] }
    }

    /// A cover made of a single cube.
    pub fn from_cube(cube: Cube) -> Self {
        Cover { cubes: vec![cube] }
    }

    /// A cover from an iterator of cubes (deduplicated, containment-reduced).
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(cubes: I) -> Self {
        let mut cover = Cover { cubes: cubes.into_iter().collect() };
        cover.make_minimal_wrt_containment();
        cover
    }

    /// The single positive literal `x_var` as a cover.
    pub fn literal(lit: Literal) -> Self {
        Cover::from_cube(Cube::from_literals([lit]).expect("single literal is consistent"))
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (product terms).
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals in SOP form.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Whether this is the constant-0 cover.
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Whether the cover contains the universal cube (syntactic constant 1).
    pub fn is_one(&self) -> bool {
        self.cubes.iter().any(Cube::is_top)
    }

    /// Evaluates the function on a minterm code.
    pub fn eval(&self, code: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(code))
    }

    /// Adds a cube (no reduction performed).
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Disjunction of two covers.
    #[must_use]
    pub fn or(&self, other: &Cover) -> Cover {
        Cover::from_cubes(self.cubes.iter().chain(other.cubes.iter()).copied())
    }

    /// Conjunction (cube-by-cube product, dropping contradictions).
    #[must_use]
    pub fn and(&self, other: &Cover) -> Cover {
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    cubes.push(c);
                }
            }
        }
        Cover::from_cubes(cubes)
    }

    /// Product of the cover with a single cube.
    #[must_use]
    pub fn and_cube(&self, cube: &Cube) -> Cover {
        Cover::from_cubes(self.cubes.iter().filter_map(|c| c.intersect(cube)))
    }

    /// Removes single-cube containment: drops cubes contained in another.
    pub fn make_minimal_wrt_containment(&mut self) {
        self.cubes.sort();
        self.cubes.dedup();
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        for c in &cubes {
            if !cubes.iter().any(|d| d != c && d.contains(c) && !(c.contains(d) && d < c)) {
                kept.push(*c);
            }
        }
        // The filter above keeps exactly one representative of equal cubes
        // (dedup removed duplicates already) and removes strictly-contained
        // cubes.
        self.cubes = kept;
    }

    /// The set of variables mentioned by the cover.
    pub fn support(&self) -> Vec<usize> {
        let mut mask = 0u64;
        for c in &self.cubes {
            mask |= c.pos_mask() | c.neg_mask();
        }
        (0..crate::cube::MAX_VARS).filter(|v| mask & (1u64 << v) != 0).collect()
    }

    /// Support as a bit mask.
    pub fn support_mask(&self) -> u64 {
        let mut mask = 0u64;
        for c in &self.cubes {
            mask |= c.pos_mask() | c.neg_mask();
        }
        mask
    }

    /// Number of cubes containing a given literal.
    pub fn literal_occurrences(&self, lit: Literal) -> usize {
        self.cubes.iter().filter(|c| c.phase_of(lit.var) == Some(lit.phase)).count()
    }

    /// Cofactor with respect to a literal (Shannon).
    #[must_use]
    pub fn cofactor(&self, lit: Literal) -> Cover {
        let mut cubes = Vec::new();
        for c in &self.cubes {
            match c.phase_of(lit.var) {
                Some(p) if p != lit.phase => continue,
                _ => cubes.push(c.without_var(lit.var)),
            }
        }
        Cover::from_cubes(cubes)
    }

    /// The largest common cube of all cubes in the cover.
    pub fn common_cube(&self) -> Cube {
        let mut iter = self.cubes.iter();
        let first = match iter.next() {
            Some(c) => *c,
            None => return Cube::top(),
        };
        iter.fold(first, |acc, c| acc.common_literals(c))
    }

    /// Whether the cover is *cube-free* (no literal common to all cubes and
    /// more than one cube).
    pub fn is_cube_free(&self) -> bool {
        self.cubes.len() > 1 && self.common_cube().is_top()
    }

    /// Checks semantic equality of two covers on an explicit universe of
    /// minterm codes.
    pub fn equals_on(&self, other: &Cover, universe: &[u64]) -> bool {
        universe.iter().all(|&m| self.eval(m) == other.eval(m))
    }

    /// Checks that the function is 1 on every code of `set`.
    pub fn covers_all(&self, set: &[u64]) -> bool {
        set.iter().all(|&m| self.eval(m))
    }

    /// Checks that the function is 0 on every code of `set`.
    pub fn avoids_all(&self, set: &[u64]) -> bool {
        set.iter().all(|&m| !self.eval(m))
    }

    /// Renders the cover with variable names supplied by `name`.
    pub fn display_with<'a, F>(&'a self, name: F) -> CoverDisplay<'a, F>
    where
        F: Fn(usize) -> String,
    {
        CoverDisplay { cover: self, name }
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        Cover::from_cubes(iter)
    }
}

impl Extend<Cube> for Cover {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        self.cubes.extend(iter);
        self.make_minimal_wrt_containment();
    }
}

/// Helper returned by [`Cover::display_with`].
pub struct CoverDisplay<'a, F> {
    cover: &'a Cover,
    name: F,
}

impl<F: Fn(usize) -> String> fmt::Display for CoverDisplay<'_, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cover.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for cube in self.cover.cubes() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{}", cube.display_with(&self.name))?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({})", self.display_with(|v| format!("x{v}")))
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| format!("x{v}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    #[test]
    fn constants() {
        assert!(Cover::zero().is_zero());
        assert!(Cover::one().is_one());
        assert!(!Cover::zero().eval(0));
        assert!(Cover::one().eval(0));
    }

    #[test]
    fn containment_reduction() {
        let a = cube(&[(0, true)]);
        let ab = cube(&[(0, true), (1, true)]);
        let cover = Cover::from_cubes([ab, a, ab]);
        assert_eq!(cover.cube_count(), 1);
        assert_eq!(cover.cubes()[0], a);
    }

    #[test]
    fn eval_or_and() {
        // f = a + b'c over vars a=0,b=1,c=2
        let f = Cover::from_cubes([cube(&[(0, true)]), cube(&[(1, false), (2, true)])]);
        assert!(f.eval(0b001));
        assert!(f.eval(0b100));
        assert!(!f.eval(0b010));
        let g = Cover::literal(Literal::pos(1));
        let fg = f.and(&g);
        assert!(fg.eval(0b011));
        assert!(!fg.eval(0b100)); // b=0 kills b'c? no: code 0b100 => c=1,b=0,a=0: f=1 via b'c but g=0
        let h = f.or(&g);
        assert!(h.eval(0b010));
    }

    #[test]
    fn cofactor_shannon() {
        // f = ab + a'c; f|a = b; f|a' = c
        let f = Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, false), (2, true)])]);
        let fa = f.cofactor(Literal::pos(0));
        assert_eq!(fa.cubes(), &[cube(&[(1, true)])]);
        let fna = f.cofactor(Literal::neg(0));
        assert_eq!(fna.cubes(), &[cube(&[(2, true)])]);
    }

    #[test]
    fn support_and_common_cube() {
        let f = Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, false)])]);
        assert_eq!(f.support(), vec![0, 1, 2]);
        assert_eq!(f.common_cube(), cube(&[(0, true)]));
        assert!(!f.is_cube_free());
    }

    #[test]
    fn literal_occurrences_counts() {
        let f = Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, true)])]);
        assert_eq!(f.literal_occurrences(Literal::pos(0)), 2);
        assert_eq!(f.literal_occurrences(Literal::neg(0)), 0);
        assert_eq!(f.literal_occurrences(Literal::pos(2)), 1);
    }

    #[test]
    fn display_formats() {
        let f = Cover::from_cubes([cube(&[(0, true)]), cube(&[(1, false)])]);
        let names = ["a", "b"];
        let rendered = format!("{}", f.display_with(|v| names[v].to_string()));
        assert!(rendered == "a + b'" || rendered == "b' + a", "rendered: {rendered}");
        assert_eq!(format!("{}", Cover::zero()), "0");
    }

    #[test]
    fn equality_on_universe() {
        let f = Cover::from_cubes([cube(&[(0, true)])]);
        let g = Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (1, false)])]);
        let universe: Vec<u64> = (0..4).collect();
        assert!(f.equals_on(&g, &universe));
    }
}
