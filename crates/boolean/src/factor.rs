//! Factoring of SOP covers into bounded-fanin gate trees.
//!
//! Used by the non-speed-independent baseline (SIS `tech_decomp -a 2`
//! equivalent) and by the cost model: a factored form is decomposed into
//! 2-input AND/OR gates and the cost is the total number of gate inputs
//! ("literals of the combinational gates", §4).

use crate::cover::Cover;
use crate::cube::Literal;
use crate::divide::algebraic_divide;
use crate::kernels::kernels;

/// A factored boolean expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Factored {
    /// A literal leaf.
    Literal(Literal),
    /// Conjunction of sub-expressions.
    And(Vec<Factored>),
    /// Disjunction of sub-expressions.
    Or(Vec<Factored>),
    /// Constant.
    Const(bool),
}

impl Factored {
    /// Number of literal leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        match self {
            Factored::Literal(_) => 1,
            Factored::Const(_) => 0,
            Factored::And(xs) | Factored::Or(xs) => xs.iter().map(Factored::leaf_count).sum(),
        }
    }

    /// Number of 2-input gates needed to realize the tree (each k-ary node
    /// costs `k-1` two-input gates).
    pub fn two_input_gate_count(&self) -> usize {
        match self {
            Factored::Literal(_) | Factored::Const(_) => 0,
            Factored::And(xs) | Factored::Or(xs) => {
                let inner: usize = xs.iter().map(Factored::two_input_gate_count).sum();
                inner + xs.len().saturating_sub(1)
            }
        }
    }

    /// Evaluates the tree on a minterm code.
    pub fn eval(&self, code: u64) -> bool {
        match self {
            Factored::Literal(l) => l.eval(code),
            Factored::Const(b) => *b,
            Factored::And(xs) => xs.iter().all(|x| x.eval(code)),
            Factored::Or(xs) => xs.iter().any(|x| x.eval(code)),
        }
    }

    /// Renders with variable names.
    pub fn display_with<F: Fn(usize) -> String>(&self, name: &F) -> String {
        match self {
            Factored::Literal(l) => {
                if l.phase {
                    name(l.var)
                } else {
                    format!("{}'", name(l.var))
                }
            }
            Factored::Const(b) => if *b { "1" } else { "0" }.to_string(),
            Factored::And(xs) => {
                let parts: Vec<String> = xs
                    .iter()
                    .map(|x| match x {
                        Factored::Or(_) => format!("({})", x.display_with(name)),
                        _ => x.display_with(name),
                    })
                    .collect();
                parts.join(" ")
            }
            Factored::Or(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| x.display_with(name)).collect();
                parts.join(" + ")
            }
        }
    }
}

/// Produces a factored form of `cover` using recursive kernel extraction
/// ("good factor"): pick the best kernel `k`, divide to get
/// `cover = q·k + r`, and recurse on `q`, `k`, `r`.
pub fn good_factor(cover: &Cover) -> Factored {
    if cover.is_zero() {
        return Factored::Const(false);
    }
    if cover.is_one() {
        return Factored::Const(true);
    }
    if cover.cube_count() == 1 {
        return factor_cube(cover);
    }
    // Strip a common cube first.
    let common = cover.common_cube();
    if !common.is_top() {
        let quotient = algebraic_divide(cover, &Cover::from_cube(common)).quotient;
        let mut parts: Vec<Factored> = common.literals().map(Factored::Literal).collect();
        parts.push(good_factor(&quotient));
        return flatten_and(parts);
    }
    // Choose the kernel that saves the most literals.
    let ks = kernels(cover);
    let mut best: Option<(usize, Cover)> = None;
    for k in &ks {
        if k.kernel == *cover {
            continue;
        }
        let div = algebraic_divide(cover, &k.kernel);
        if div.quotient.is_zero() {
            continue;
        }
        let new_cost =
            k.kernel.literal_count() + div.quotient.literal_count() + div.remainder.literal_count();
        let old_cost = cover.literal_count();
        if new_cost < old_cost {
            let saving = old_cost - new_cost;
            if best.as_ref().map(|(s, _)| saving > *s).unwrap_or(true) {
                best = Some((saving, k.kernel.clone()));
            }
        }
    }
    match best {
        Some((_, kernel)) => {
            let div = algebraic_divide(cover, &kernel);
            let product = flatten_and(vec![good_factor(&div.quotient), good_factor(&kernel)]);
            if div.remainder.is_zero() {
                product
            } else {
                flatten_or(vec![product, good_factor(&div.remainder)])
            }
        }
        None => {
            // No useful kernel: OR of the factored cubes.
            flatten_or(cover.cubes().iter().map(|c| factor_cube(&Cover::from_cube(*c))).collect())
        }
    }
}

fn factor_cube(cover: &Cover) -> Factored {
    let cube = cover.cubes()[0];
    let lits: Vec<Factored> = cube.literals().map(Factored::Literal).collect();
    match lits.len() {
        0 => Factored::Const(true),
        1 => lits.into_iter().next().expect("len checked"),
        _ => Factored::And(lits),
    }
}

fn flatten_and(parts: Vec<Factored>) -> Factored {
    let mut flat = Vec::new();
    for p in parts {
        match p {
            Factored::And(xs) => flat.extend(xs),
            Factored::Const(true) => {}
            other => flat.push(other),
        }
    }
    match flat.len() {
        0 => Factored::Const(true),
        1 => flat.into_iter().next().expect("len checked"),
        _ => Factored::And(flat),
    }
}

fn flatten_or(parts: Vec<Factored>) -> Factored {
    let mut flat = Vec::new();
    for p in parts {
        match p {
            Factored::Or(xs) => flat.extend(xs),
            Factored::Const(false) => {}
            other => flat.push(other),
        }
    }
    match flat.len() {
        0 => Factored::Const(false),
        1 => flat.into_iter().next().expect("len checked"),
        _ => Factored::Or(flat),
    }
}

/// Cost of realizing `cover` with 2-input AND/OR gates after factoring:
/// total number of gate inputs (2 per gate), the §4 "non-SI" literal model.
pub fn two_input_decomposition_cost(cover: &Cover) -> usize {
    let f = good_factor(cover);
    2 * f.two_input_gate_count()
        + if f.two_input_gate_count() == 0 && f.leaf_count() > 0 { 1 } else { 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    #[test]
    fn factors_preserve_function() {
        let covers = [
            Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, true)])]),
            Cover::from_cubes([
                cube(&[(0, true), (3, true)]),
                cube(&[(1, true), (3, true)]),
                cube(&[(2, false)]),
            ]),
            Cover::from_cube(cube(&[(0, true), (1, false), (2, true), (3, true)])),
        ];
        for cover in &covers {
            let f = good_factor(cover);
            for code in 0..16u64 {
                assert_eq!(f.eval(code), cover.eval(code), "mismatch on {code:04b} for {cover:?}");
            }
        }
    }

    #[test]
    fn factoring_saves_literals() {
        // ab + ac + ad = a(b+c+d): 6 SOP literals -> 4 leaves.
        let f = Cover::from_cubes([
            cube(&[(0, true), (1, true)]),
            cube(&[(0, true), (2, true)]),
            cube(&[(0, true), (3, true)]),
        ]);
        let t = good_factor(&f);
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.two_input_gate_count(), 3); // OR2, OR2, AND2
    }

    #[test]
    fn kernel_based_factoring() {
        // ad + ae + bd + be = (a+b)(d+e): 8 -> 4 leaves.
        let f = Cover::from_cubes([
            cube(&[(0, true), (3, true)]),
            cube(&[(0, true), (4, true)]),
            cube(&[(1, true), (3, true)]),
            cube(&[(1, true), (4, true)]),
        ]);
        let t = good_factor(&f);
        assert_eq!(t.leaf_count(), 4);
        for code in 0..32u64 {
            assert_eq!(t.eval(code), f.eval(code));
        }
    }

    #[test]
    fn cost_model() {
        // Single 2-literal cube: one AND2, cost 2.
        let f = Cover::from_cube(cube(&[(0, true), (1, true)]));
        assert_eq!(two_input_decomposition_cost(&f), 2);
        // Single literal: a wire/buffer, cost 1.
        let g = Cover::literal(Literal::pos(0));
        assert_eq!(two_input_decomposition_cost(&g), 1);
        // 6-literal cube: 5 AND2 gates, cost 10.
        let h = Cover::from_cube(Cube::from_literals((0..6).map(Literal::pos)).unwrap());
        assert_eq!(two_input_decomposition_cost(&h), 10);
    }

    #[test]
    fn constants() {
        assert_eq!(good_factor(&Cover::zero()), Factored::Const(false));
        assert_eq!(good_factor(&Cover::one()), Factored::Const(true));
    }

    #[test]
    fn display() {
        let f = Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, false)])]);
        let t = good_factor(&f);
        let names = ["a", "b", "c"];
        let s = t.display_with(&|v| names[v].to_string());
        assert!(s.contains('a'), "rendered: {s}");
    }
}
