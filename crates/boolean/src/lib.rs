//! # simap-boolean
//!
//! Cube/sum-of-products boolean engine underpinning the speed-independent
//! technology mapper: cube algebra, two-level minimization against explicit
//! ON/OFF minterm lists, algebraic division, kernel extraction, candidate
//! divisor generation and tree factoring.
//!
//! Cube/cover functions are defined over at most [`cube::MAX_VARS`] (= 64)
//! variables, which comfortably covers the asynchronous-benchmark state
//! graphs the mapper targets. The [`bdd`] manager goes further
//! ([`bdd::MAX_BDD_VARS`]) and ships the symbolic model-checking
//! primitives — relational product, set quantification, variable renaming
//! and set-restricted counting — used by the symbolic reachability engine.
//!
//! ```
//! use simap_boolean::{Cover, Cube, Literal, algebraic_divide};
//!
//! // f = ab + ac + d, divided by (b + c), gives quotient a and remainder d.
//! let f = Cover::from_cubes([
//!     Cube::from_literals([Literal::pos(0), Literal::pos(1)]).ok_or("bad cube")?,
//!     Cube::from_literals([Literal::pos(0), Literal::pos(2)]).ok_or("bad cube")?,
//!     Cube::from_literals([Literal::pos(3)]).ok_or("bad cube")?,
//! ]);
//! let d = Cover::from_cubes([
//!     Cube::from_literals([Literal::pos(1)]).ok_or("bad cube")?,
//!     Cube::from_literals([Literal::pos(2)]).ok_or("bad cube")?,
//! ]);
//! let division = algebraic_divide(&f, &d);
//! assert_eq!(division.quotient.literal_count(), 1);
//! # Ok::<(), &'static str>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod cover;
pub mod cube;
pub mod divide;
pub mod divisors;
pub mod factor;
pub mod kernels;
pub mod minimize;

pub use bdd::{cover_matches_spec, Bdd, BddRef, VarSet, MAX_BDD_VARS};
pub use cover::Cover;
pub use cube::{Cube, Literal, MAX_VARS};
pub use divide::{algebraic_divide, divide_by_cube, Division};
pub use divisors::{generate_divisors, DivisorConfig};
pub use factor::{good_factor, two_input_decomposition_cost, Factored};
pub use kernels::{kernels, Kernel};
pub use minimize::{gate_complexity, minimize_onoff, ConflictingMintermError, MinimizeProblem};
