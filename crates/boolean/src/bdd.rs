//! Reduced Ordered Binary Decision Diagrams.
//!
//! A compact ROBDD package with complement edges, a unique table, an ITE
//! computed cache, mark-and-sweep garbage collection and dynamic variable
//! reordering by sifting. The SOP engine ([`crate::minimize`]) is
//! heuristic; BDDs give the *exact* side: tautology, equivalence,
//! complementation and satisfy-count, used to cross-check covers and to
//! validate the minimizer in tests. Variables use the same indices as
//! [`crate::Cube`] (default ordering `x0 < x1 < …`; [`Bdd::sift`] and
//! [`Bdd::reorder`] permute the order without changing any function).
//!
//! On top of the classic connectives the manager provides the symbolic
//! model-checking primitives — set-wise quantification
//! ([`Bdd::exists_set`]), the relational product ([`Bdd::and_exists`]),
//! order-preserving variable renaming ([`Bdd::rename`]) and
//! set-restricted satisfy counting ([`Bdd::sat_count_set`]) — used by the
//! symbolic reachability engine. Those set-based operations work on up to
//! [`MAX_BDD_VARS`] variables; the minterm-code APIs ([`Bdd::eval`],
//! [`Bdd::sat_count`]) and the [`Cube`]/[`Cover`] conversions remain
//! bounded by [`crate::cube::MAX_VARS`] (= 64) and assert it.
//!
//! # Complement edges
//!
//! Negation is a constant-time bit flip: a [`BddRef`] carries a
//! complement bit next to its node index, and canonicity is maintained by
//! never storing a complemented `hi` edge. All observable behavior is
//! unchanged — equality of refs is still function equality within one
//! manager, [`BddRef::TRUE`]/[`BddRef::FALSE`] are still the terminal
//! constants — but shared subgraphs now serve both polarities, roughly
//! halving node counts on negation-heavy workloads.
//!
//! # Memory management
//!
//! [`Bdd::gc`] mark-and-sweep collects every node unreachable from the
//! given roots and the [`Bdd::protect`]ed registry, recycling slots
//! without moving live nodes (live [`BddRef`]s stay valid). A node-count
//! watermark ([`Bdd::set_gc_watermark`]) triggers the same collection
//! automatically at operation entry; because the collector cannot see
//! refs held in caller locals, automatic collection is **opt-in** and
//! only safe when every ref held across operations is protected.
//! [`Bdd::set_sift_watermark`] likewise triggers a sifting pass when the
//! store grows past a bound. [`Bdd::stats`] exposes peak node count, GC
//! and reordering counters.

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use std::collections::HashMap;

/// Hard cap on BDD variable indices. Far above [`crate::cube::MAX_VARS`]
/// (the bound that still applies to the cube/cover conversions): symbolic
/// state vectors interleave current/next copies of every place and signal
/// of a net, which overflows the 64-variable cube world long before it
/// stresses the node store.
pub const MAX_BDD_VARS: usize = 4096;

/// A set of BDD variables, used by the quantification, relational-product
/// and counting operations. Stored as a bitset; construction order is
/// irrelevant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSet {
    bits: Vec<u64>,
}

impl VarSet {
    /// The empty set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Adds a variable to the set.
    ///
    /// # Panics
    /// Panics if `var >= MAX_BDD_VARS`.
    pub fn insert(&mut self, var: usize) {
        assert!(var < MAX_BDD_VARS, "variable index {var} out of range");
        let word = var / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1u64 << (var % 64);
    }

    /// Whether `var` is in the set.
    pub fn contains(&self, var: usize) -> bool {
        self.bits.get(var / 64).is_some_and(|w| w >> (var % 64) & 1 == 1)
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .flat_map(|(i, &w)| (0..64).filter(move |b| w >> b & 1 == 1).map(move |b| i * 64 + b))
    }

    /// The largest member, if any.
    pub fn max(&self) -> Option<usize> {
        self.bits
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + 63 - w.leading_zeros() as usize)
    }
}

impl FromIterator<usize> for VarSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = VarSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

/// Reference to a BDD node (terminals included). Only meaningful together
/// with the [`Bdd`] manager that produced it.
///
/// Bit 0 is the complement flag; the remaining bits are the node index,
/// so negation never allocates. Equality of refs is function equality
/// within one manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-true terminal (the shared terminal node, plain).
    pub const TRUE: BddRef = BddRef(0);
    /// The constant-false terminal (the shared terminal node, complemented).
    pub const FALSE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    fn complement(self) -> BddRef {
        BddRef(self.0 ^ 1)
    }

    fn regular(self) -> BddRef {
        BddRef(self.0 & !1)
    }

    fn from_index(index: u32, complemented: bool) -> BddRef {
        BddRef(index << 1 | complemented as u32)
    }
}

/// Counters exposed by [`Bdd::stats`]: store occupancy, GC activity and
/// reordering activity. All counters are cumulative for the lifetime of
/// the manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddStats {
    /// Live (reachable, non-terminal) nodes currently in the store.
    pub live_nodes: usize,
    /// High-water mark of live nodes over the manager's lifetime.
    pub peak_nodes: usize,
    /// Mark-and-sweep passes run (explicit, automatic, and pre-sift).
    pub gc_runs: usize,
    /// Total nodes reclaimed across all GC passes.
    pub collected_nodes: usize,
    /// Reordering passes ([`Bdd::sift`] + [`Bdd::reorder`]) completed.
    pub reorders: usize,
    /// Adjacent-level swaps performed by reordering passes.
    pub level_swaps: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// Sentinel `var` marking the shared terminal slot and recycled slots.
const FREE_VAR: u32 = u32::MAX;

const FREE_NODE: Node = Node { var: FREE_VAR, lo: BddRef::TRUE, hi: BddRef::TRUE };

/// A BDD manager: owns the node store, the unique table, the operation
/// cache, the variable order and the GC machinery.
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<Node>,
    free: Vec<u32>,
    unique: HashMap<Node, u32>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    /// `var2level[v]` = level of variable `v`, `FREE_VAR` if not created.
    var2level: Vec<u32>,
    /// `level2var[l]` = variable at level `l` (top = 0).
    level2var: Vec<u32>,
    protected: Vec<BddRef>,
    gc_watermark: Option<usize>,
    sift_watermark: Option<usize>,
    stats: BddStats,
}

impl Default for Bdd {
    fn default() -> Self {
        Bdd::new()
    }
}

impl Bdd {
    /// Creates an empty manager.
    pub fn new() -> Self {
        // Slot 0 is the shared terminal; TRUE and FALSE are its two
        // polarities.
        Bdd {
            nodes: vec![FREE_NODE],
            free: Vec::new(),
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            protected: Vec::new(),
            gc_watermark: None,
            sift_watermark: None,
            stats: BddStats::default(),
        }
    }

    /// Number of live (non-terminal) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1 - self.free.len()
    }

    fn live_nodes(&self) -> usize {
        self.nodes.len() - 1 - self.free.len()
    }

    /// Store, GC and reordering counters. `live_nodes` is current; the
    /// rest are cumulative.
    pub fn stats(&self) -> BddStats {
        BddStats { live_nodes: self.live_nodes(), ..self.stats }
    }

    /// The current variable order, top level first. Contains every
    /// variable the manager has seen.
    pub fn order(&self) -> Vec<usize> {
        self.level2var.iter().map(|&v| v as usize).collect()
    }

    // ---- variable order bookkeeping ------------------------------------

    /// Assigns a level to `var` if it has none yet. While the order has
    /// never been permuted, new variables slot in by index so the default
    /// order stays `x0 < x1 < …`; after a reorder they append at the
    /// bottom.
    fn ensure_var(&mut self, var: u32) {
        let v = var as usize;
        if v >= self.var2level.len() {
            self.var2level.resize(v + 1, FREE_VAR);
        }
        if self.var2level[v] != FREE_VAR {
            return;
        }
        let sorted = self.level2var.windows(2).all(|w| w[0] < w[1]);
        let pos = if sorted {
            self.level2var.partition_point(|&u| u < var)
        } else {
            self.level2var.len()
        };
        self.level2var.insert(pos, var);
        for l in pos..self.level2var.len() {
            self.var2level[self.level2var[l] as usize] = l as u32;
        }
    }

    fn level_of(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }

    fn level_of_ref(&self, r: BddRef) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.level_of(self.nodes[r.index()].var)
        }
    }

    fn var_of(&self, r: BddRef) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.nodes[r.index()].var
        }
    }

    // ---- node construction ---------------------------------------------

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        if hi.is_complemented() {
            return self.mk_regular(var, lo.complement(), hi.complement()).complement();
        }
        self.mk_regular(var, lo, hi)
    }

    fn mk_regular(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        debug_assert!(!hi.is_complemented());
        debug_assert!(self.level_of_ref(lo) > self.level_of(var));
        debug_assert!(self.level_of_ref(hi) > self.level_of(var));
        let node = Node { var, lo, hi };
        if let Some(&idx) = self.unique.get(&node) {
            return BddRef::from_index(idx, false);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(node);
                i
            }
        };
        self.unique.insert(node, idx);
        let live = self.live_nodes();
        if live > self.stats.peak_nodes {
            self.stats.peak_nodes = live;
        }
        BddRef::from_index(idx, false)
    }

    /// Cofactors of `r` with respect to `var`, with the complement bit
    /// pushed through to the children.
    fn cofactors(&self, r: BddRef, var: u32) -> (BddRef, BddRef) {
        if r.is_terminal() {
            return (r, r);
        }
        let n = self.nodes[r.index()];
        if n.var != var {
            return (r, r);
        }
        if r.is_complemented() {
            (n.lo.complement(), n.hi.complement())
        } else {
            (n.lo, n.hi)
        }
    }

    // ---- garbage collection and reordering ------------------------------

    /// Adds `r` to the protected-roots registry: GC and automatic
    /// housekeeping treat it (and everything it reaches) as live. One
    /// [`Bdd::unprotect`] cancels one `protect`.
    pub fn protect(&mut self, r: BddRef) {
        self.protected.push(r);
    }

    /// Removes one occurrence of `r` from the protected-roots registry.
    pub fn unprotect(&mut self, r: BddRef) {
        if let Some(p) = self.protected.iter().rposition(|&x| x == r) {
            self.protected.swap_remove(p);
        }
    }

    /// Mark-and-sweep: frees every node unreachable from `roots` and the
    /// [`Bdd::protect`]ed registry, recycling the slots without moving
    /// live nodes (live refs stay valid). Returns the number of nodes
    /// collected. The operation cache is dropped when anything is freed.
    pub fn gc(&mut self, roots: &[BddRef]) -> usize {
        let mut live = vec![false; self.nodes.len()];
        live[0] = true;
        let mut stack: Vec<usize> = Vec::with_capacity(roots.len() + self.protected.len());
        stack.extend(roots.iter().map(|r| r.index()));
        stack.extend(self.protected.iter().map(|r| r.index()));
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            let n = self.nodes[i];
            stack.push(n.lo.index());
            stack.push(n.hi.index());
        }
        let mut collected = 0;
        for (i, &is_live) in live.iter().enumerate().skip(1) {
            if is_live || self.nodes[i].var == FREE_VAR {
                continue;
            }
            self.unique.remove(&self.nodes[i]);
            self.nodes[i] = FREE_NODE;
            self.free.push(i as u32);
            collected += 1;
        }
        if collected > 0 {
            self.ite_cache.clear();
        }
        self.stats.gc_runs += 1;
        self.stats.collected_nodes += collected;
        collected
    }

    /// Number of nodes reachable from `roots` + the protected registry,
    /// without sweeping.
    fn reachable_count(&self, roots: &[BddRef]) -> usize {
        let mut live = vec![false; self.nodes.len()];
        live[0] = true;
        let mut stack: Vec<usize> = Vec::with_capacity(roots.len() + self.protected.len());
        stack.extend(roots.iter().map(|r| r.index()));
        stack.extend(self.protected.iter().map(|r| r.index()));
        let mut count = 0;
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            count += 1;
            let n = self.nodes[i];
            stack.push(n.lo.index());
            stack.push(n.hi.index());
        }
        count
    }

    /// Enables (Some) or disables (None) automatic mark-and-sweep: when
    /// the live node count exceeds the watermark at operation entry, the
    /// manager collects against the protected registry plus the
    /// operation's own arguments. Opt-in: only safe when every ref held
    /// across operations is [`Bdd::protect`]ed.
    pub fn set_gc_watermark(&mut self, limit: Option<usize>) {
        self.gc_watermark = limit;
    }

    /// Enables (Some) or disables (None) an automatic sifting pass when
    /// the live node count exceeds the watermark at operation entry.
    /// Sifting preserves every ref, but the pass GCs first, so the same
    /// protection contract as [`Bdd::set_gc_watermark`] applies.
    pub fn set_sift_watermark(&mut self, limit: Option<usize>) {
        self.sift_watermark = limit;
    }

    /// Watermark check at public operation entry. `roots` are the
    /// operation's arguments; anything else the caller holds must be
    /// protected. If a pass fails to get below the watermark the
    /// watermark doubles, so a store that is legitimately large does not
    /// thrash.
    fn housekeep(&mut self, roots: &[BddRef]) {
        if let Some(w) = self.gc_watermark {
            if self.live_nodes() > w {
                self.gc(roots);
                if self.live_nodes() > w {
                    self.gc_watermark = Some(self.live_nodes() * 2);
                }
            }
        }
        if let Some(w) = self.sift_watermark {
            if self.live_nodes() > w {
                self.sift(roots);
                if self.live_nodes() > w {
                    self.sift_watermark = Some(self.live_nodes() * 2);
                }
            }
        }
    }

    /// Swaps the variables at `level` and `level + 1` in place. Every
    /// existing ref keeps denoting the same function: only nodes at
    /// `level` with a child at `level + 1` are rewritten (in their own
    /// slots), per the classic adjacent-swap construction.
    fn swap_levels(&mut self, level: usize) {
        let u = self.level2var[level];
        let v = self.level2var[level + 1];
        let mut worklist = Vec::new();
        for idx in 1..self.nodes.len() {
            let n = self.nodes[idx];
            if n.var != u {
                continue;
            }
            if self.var_of(n.lo) == v || self.var_of(n.hi) == v {
                worklist.push(idx);
            }
        }
        // The maps swap first so mk sees the post-swap order.
        self.level2var.swap(level, level + 1);
        self.var2level[u as usize] = (level + 1) as u32;
        self.var2level[v as usize] = level as u32;
        for idx in worklist {
            let n = self.nodes[idx];
            self.unique.remove(&n);
            let (f00, f01) = self.cofactors(n.lo, v);
            let (f10, f11) = self.cofactors(n.hi, v);
            let g0 = self.mk(u, f00, f10);
            let g1 = self.mk(u, f01, f11);
            // hi cofactors of a regular hi edge are regular, so g1 is too
            // and the slot's function is preserved verbatim.
            debug_assert!(!g1.is_complemented());
            let newn = Node { var: v, lo: g0, hi: g1 };
            self.nodes[idx] = newn;
            let prev = self.unique.insert(newn, idx as u32);
            debug_assert!(prev.is_none(), "level swap produced a duplicate node");
        }
        self.stats.level_swaps += 1;
    }

    /// Permutes the variable order to place the listed variables at the
    /// top, in the given sequence; unlisted variables keep their relative
    /// order below. No function changes: refs stay valid.
    ///
    /// # Panics
    /// Panics if `order` repeats a variable or exceeds `MAX_BDD_VARS`.
    pub fn reorder(&mut self, order: &[usize]) {
        let mut seen = std::collections::HashSet::new();
        for &v in order {
            assert!(v < MAX_BDD_VARS, "variable index {v} out of range");
            assert!(seen.insert(v), "reorder lists variable {v} twice");
            self.ensure_var(v as u32);
        }
        let mut target: Vec<u32> = order.iter().map(|&v| v as u32).collect();
        target.extend(self.level2var.iter().copied().filter(|v| !seen.contains(&(*v as usize))));
        for (i, &v) in target.iter().enumerate() {
            let mut l = self.var2level[v as usize] as usize;
            debug_assert!(l >= i);
            while l > i {
                self.swap_levels(l - 1);
                l -= 1;
            }
        }
        self.stats.reorders += 1;
    }

    /// Dynamic reordering by sifting: GCs against `roots` + the
    /// protected registry, then moves each variable (densest first)
    /// through every level and leaves it where the live node count is
    /// smallest. Refs stay valid throughout.
    pub fn sift(&mut self, roots: &[BddRef]) {
        self.gc(roots);
        let nlevels = self.level2var.len();
        if nlevels < 2 {
            self.stats.reorders += 1;
            return;
        }
        let mut counts = vec![0usize; self.var2level.len()];
        for idx in 1..self.nodes.len() {
            let n = self.nodes[idx];
            if n.var != FREE_VAR {
                counts[n.var as usize] += 1;
            }
        }
        let mut vars: Vec<u32> =
            (0..counts.len() as u32).filter(|&v| counts[v as usize] > 0).collect();
        vars.sort_by_key(|&v| (std::cmp::Reverse(counts[v as usize]), v));
        for v in vars {
            let mut cur = self.var2level[v as usize] as usize;
            let mut best = cur;
            let mut best_size = self.reachable_count(roots);
            while cur + 1 < nlevels {
                self.swap_levels(cur);
                cur += 1;
                let s = self.reachable_count(roots);
                if s < best_size {
                    best_size = s;
                    best = cur;
                }
            }
            while cur > 0 {
                self.swap_levels(cur - 1);
                cur -= 1;
                let s = self.reachable_count(roots);
                if s < best_size {
                    best_size = s;
                    best = cur;
                }
            }
            while cur < best {
                self.swap_levels(cur);
                cur += 1;
            }
            self.gc(roots);
        }
        self.stats.reorders += 1;
    }

    // ---- core operations -------------------------------------------------

    /// The single-variable function `x_var`.
    ///
    /// # Panics
    /// Panics if `var >= MAX_BDD_VARS`. (The [`Cube`]/[`Cover`]
    /// conversions stay bounded by the tighter [`crate::cube::MAX_VARS`].)
    pub fn var(&mut self, var: usize) -> BddRef {
        assert!(var < MAX_BDD_VARS, "variable index {var} out of range");
        self.ensure_var(var as u32);
        self.mk(var as u32, BddRef::FALSE, BddRef::TRUE)
    }

    /// The literal `x_var` or `x̄_var`.
    pub fn literal(&mut self, lit: Literal) -> BddRef {
        let v = self.var(lit.var);
        if lit.phase {
            v
        } else {
            v.complement()
        }
    }

    /// If-then-else: the universal connective all operations reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        self.housekeep(&[f, g, h]);
        self.ite_raw(f, g, h)
    }

    fn ite_raw(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        let (mut f, mut g, mut h) = (f, g, h);
        if g == f {
            g = BddRef::TRUE;
        } else if g == f.complement() {
            g = BddRef::FALSE;
        }
        if h == f {
            h = BddRef::FALSE;
        } else if h == f.complement() {
            h = BddRef::TRUE;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        if g == BddRef::FALSE && h == BddRef::TRUE {
            return f.complement();
        }
        // Canonicalize the cache key: plain condition, plain then-branch.
        if f.is_complemented() {
            f = f.complement();
            std::mem::swap(&mut g, &mut h);
        }
        let flip = g.is_complemented();
        if flip {
            g = g.complement();
            h = h.complement();
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return if flip { r.complement() } else { r };
        }
        let top = self.level_of_ref(f).min(self.level_of_ref(g)).min(self.level_of_ref(h));
        let tv = self.level2var[top as usize];
        let (f0, f1) = self.cofactors(f, tv);
        let (g0, g1) = self.cofactors(g, tv);
        let (h0, h1) = self.cofactors(h, tv);
        let lo = self.ite_raw(f0, g0, h0);
        let hi = self.ite_raw(f1, g1, h1);
        let r = self.mk(tv, lo, hi);
        self.ite_cache.insert(key, r);
        if flip {
            r.complement()
        } else {
            r
        }
    }

    fn and_raw(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite_raw(a, b, BddRef::FALSE)
    }

    fn or_raw(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite_raw(a, BddRef::TRUE, b)
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.housekeep(&[a, b]);
        self.and_raw(a, b)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.housekeep(&[a, b]);
        self.or_raw(a, b)
    }

    /// Negation (a constant-time complement-bit flip).
    pub fn not(&mut self, a: BddRef) -> BddRef {
        a.complement()
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.housekeep(&[a, b]);
        self.ite_raw(a, b.complement(), b)
    }

    /// Builds the BDD of a cube (conjunction of literals).
    pub fn from_cube(&mut self, cube: &Cube) -> BddRef {
        self.housekeep(&[]);
        self.from_cube_raw(cube)
    }

    #[allow(clippy::wrong_self_convention)] // named for the public entry it backs
    fn from_cube_raw(&mut self, cube: &Cube) -> BddRef {
        let mut acc = BddRef::TRUE;
        // Build bottom-up (highest variable first) for linear growth.
        let lits: Vec<Literal> = cube.literals().collect();
        for lit in lits.into_iter().rev() {
            let l = self.literal(lit);
            acc = self.and_raw(l, acc);
        }
        acc
    }

    /// Builds the BDD of a sum-of-products cover.
    pub fn from_cover(&mut self, cover: &Cover) -> BddRef {
        self.housekeep(&[]);
        self.from_cover_raw(cover)
    }

    #[allow(clippy::wrong_self_convention)] // named for the public entry it backs
    fn from_cover_raw(&mut self, cover: &Cover) -> BddRef {
        let mut acc = BddRef::FALSE;
        for cube in cover.cubes() {
            let c = self.from_cube_raw(cube);
            acc = self.or_raw(acc, c);
        }
        acc
    }

    /// Evaluates the function on a minterm code. A `u64` code addresses
    /// 64 variables, so like every minterm-code API this is only defined
    /// for functions whose support stays below [`crate::cube::MAX_VARS`].
    ///
    /// # Panics
    /// Panics if the function depends on a variable `>= 64`.
    pub fn eval(&self, r: BddRef, code: u64) -> bool {
        let mut r = r;
        let mut neg = false;
        loop {
            neg ^= r.is_complemented();
            if r.index() == 0 {
                return !neg;
            }
            let n = self.nodes[r.index()];
            assert!(n.var < 64, "eval takes u64 minterm codes; variable {} is out of range", n.var);
            r = if code >> n.var & 1 == 1 { n.hi } else { n.lo };
        }
    }

    /// Whether the function is the constant true (canonicity makes this a
    /// pointer test).
    pub fn is_tautology(&self, r: BddRef) -> bool {
        r == BddRef::TRUE
    }

    /// Whether two covers denote the same boolean function.
    pub fn covers_equal(&mut self, a: &Cover, b: &Cover) -> bool {
        self.housekeep(&[]);
        let ra = self.from_cover_raw(a);
        let rb = self.from_cover_raw(b);
        ra == rb
    }

    /// Whether cover `a` implies cover `b` (`a ⊆ b` as sets of minterms).
    pub fn cover_implies(&mut self, a: &Cover, b: &Cover) -> bool {
        self.housekeep(&[]);
        let ra = self.from_cover_raw(a);
        let rb = self.from_cover_raw(b);
        self.and_raw(ra, rb.complement()) == BddRef::FALSE
    }

    /// Number of satisfying assignments over `nvars` variables. The
    /// function's support must lie within `0..nvars` (use
    /// [`Bdd::sat_count_set`] for sparse or high-index variable sets).
    ///
    /// # Panics
    /// Panics if the function depends on a variable `>= nvars`.
    pub fn sat_count(&self, r: BddRef, nvars: usize) -> u64 {
        for v in self.support(r) {
            assert!(
                v < nvars,
                "sat_count over {nvars} variables, but the function depends on variable {v}"
            );
        }
        let vars: VarSet = (0..nvars).collect();
        let count = self.count_minterms(r, &vars);
        u64::try_from(count).unwrap_or(u64::MAX)
    }

    /// Extracts an (irredundant-path) SOP cover: one cube per 1-path.
    /// Cubes are bounded by [`crate::cube::MAX_VARS`], so the function's
    /// support must stay below 64 (the [`Literal`] constructor asserts).
    pub fn to_cover(&self, r: BddRef) -> Cover {
        let mut cubes = Vec::new();
        let mut path: Vec<Literal> = Vec::new();
        self.paths(r, false, &mut path, &mut cubes);
        Cover::from_cubes(cubes)
    }

    fn paths(&self, r: BddRef, neg: bool, path: &mut Vec<Literal>, out: &mut Vec<Cube>) {
        let neg = neg ^ r.is_complemented();
        if r.index() == 0 {
            if !neg {
                out.push(Cube::from_literals(path.iter().copied()).expect("path is consistent"));
            }
            return;
        }
        let n = self.nodes[r.index()];
        path.push(Literal::neg(n.var as usize));
        self.paths(n.lo, neg, path, out);
        path.pop();
        path.push(Literal::pos(n.var as usize));
        self.paths(n.hi, neg, path, out);
        path.pop();
    }

    /// Existential quantification of a variable.
    pub fn exists(&mut self, r: BddRef, var: usize) -> BddRef {
        self.housekeep(&[r]);
        let (lo, hi) = self.restrict_pair_raw(r, var);
        self.or_raw(lo, hi)
    }

    /// Universal quantification of a variable.
    pub fn forall(&mut self, r: BddRef, var: usize) -> BddRef {
        self.housekeep(&[r]);
        let (lo, hi) = self.restrict_pair_raw(r, var);
        self.and_raw(lo, hi)
    }

    /// Restriction `f|_{var=value}`.
    pub fn restrict(&mut self, r: BddRef, var: usize, value: bool) -> BddRef {
        self.housekeep(&[r]);
        let (lo, hi) = self.restrict_pair_raw(r, var);
        if value {
            hi
        } else {
            lo
        }
    }

    fn restrict_pair_raw(&mut self, r: BddRef, var: usize) -> (BddRef, BddRef) {
        let v = var as u32;
        if var >= self.var2level.len() || self.var2level[var] == FREE_VAR {
            // Never-created variable: nothing can depend on it.
            return (r, r);
        }
        let vlevel = self.level_of(v);
        fn rec(
            bdd: &mut Bdd,
            r: BddRef,
            v: u32,
            vlevel: u32,
            value: bool,
            memo: &mut HashMap<BddRef, BddRef>,
        ) -> BddRef {
            if r.is_terminal() || bdd.level_of_ref(r) > vlevel {
                return r;
            }
            if let Some(&m) = memo.get(&r) {
                return m;
            }
            let n = bdd.nodes[r.index()];
            let (lo, hi) = bdd.cofactors(r, n.var);
            let res = if n.var == v {
                if value {
                    hi
                } else {
                    lo
                }
            } else {
                let lo = rec(bdd, lo, v, vlevel, value, memo);
                let hi = rec(bdd, hi, v, vlevel, value, memo);
                bdd.mk(n.var, lo, hi)
            };
            memo.insert(r, res);
            res
        }
        let lo = rec(self, r, v, vlevel, false, &mut HashMap::new());
        let hi = rec(self, r, v, vlevel, true, &mut HashMap::new());
        (lo, hi)
    }

    /// Whether the function depends on `var`.
    pub fn depends_on(&mut self, r: BddRef, var: usize) -> bool {
        self.housekeep(&[r]);
        let (lo, hi) = self.restrict_pair_raw(r, var);
        lo != hi
    }

    /// The decomposition of a non-terminal node: `(var, lo, hi)` with
    /// `lo = f|_{var=0}` and `hi = f|_{var=1}`. `None` for terminals.
    pub fn node(&self, r: BddRef) -> Option<(usize, BddRef, BddRef)> {
        if r.is_terminal() {
            None
        } else {
            let n = self.nodes[r.index()];
            let (lo, hi) = if r.is_complemented() {
                (n.lo.complement(), n.hi.complement())
            } else {
                (n.lo, n.hi)
            };
            Some((n.var as usize, lo, hi))
        }
    }

    /// The support of a function: every variable it depends on, ascending.
    pub fn support(&self, r: BddRef) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = Vec::new();
        let mut stack = vec![r.index()];
        while let Some(x) = stack.pop() {
            if x == 0 || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x];
            vars.push(n.var as usize);
            stack.push(n.lo.index());
            stack.push(n.hi.index());
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Existential quantification of every variable in `vars` at once
    /// (`∃ vars. f`). Equivalent to chaining [`Bdd::exists`] but with one
    /// memoized traversal.
    pub fn exists_set(&mut self, r: BddRef, vars: &VarSet) -> BddRef {
        self.housekeep(&[r]);
        let Some(max) = self.deepest_level(vars) else { return r };
        let mut memo = HashMap::new();
        self.exists_set_rec(r, vars, max, &mut memo)
    }

    /// The deepest level any *created* member of `vars` sits at; `None`
    /// if no member has ever been created (then nothing depends on them).
    fn deepest_level(&self, vars: &VarSet) -> Option<u32> {
        vars.iter().filter_map(|v| self.var2level.get(v).copied()).filter(|&l| l != FREE_VAR).max()
    }

    fn exists_set_rec(
        &mut self,
        r: BddRef,
        vars: &VarSet,
        max: u32,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        // Below the deepest quantified variable the function is untouched.
        if r.is_terminal() || self.level_of_ref(r) > max {
            return r;
        }
        if let Some(&m) = memo.get(&r) {
            return m;
        }
        let var = self.nodes[r.index()].var;
        let (lo, hi) = self.cofactors(r, var);
        let lo = self.exists_set_rec(lo, vars, max, memo);
        let hi = self.exists_set_rec(hi, vars, max, memo);
        let res =
            if vars.contains(var as usize) { self.or_raw(lo, hi) } else { self.mk(var, lo, hi) };
        memo.insert(r, res);
        res
    }

    /// The relational product `∃ vars. f ∧ g` in one pass — the image
    /// operator of symbolic reachability (`f` a state set, `g` a
    /// transition relation, `vars` the current-state variables). Avoids
    /// ever building the (often much larger) conjunction.
    pub fn and_exists(&mut self, f: BddRef, g: BddRef, vars: &VarSet) -> BddRef {
        self.housekeep(&[f, g]);
        let max = match self.deepest_level(vars) {
            Some(m) => m,
            None => return self.and_raw(f, g),
        };
        let mut memo = HashMap::new();
        self.and_exists_rec(f, g, vars, max, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: BddRef,
        g: BddRef,
        vars: &VarSet,
        max: u32,
        memo: &mut HashMap<(BddRef, BddRef), BddRef>,
    ) -> BddRef {
        if f == BddRef::FALSE || g == BddRef::FALSE {
            return BddRef::FALSE;
        }
        if f == BddRef::TRUE && g == BddRef::TRUE {
            return BddRef::TRUE;
        }
        let top = self.level_of_ref(f).min(self.level_of_ref(g));
        if top > max {
            // No quantified variable remains below: plain conjunction.
            return self.and_raw(f, g);
        }
        // ∧ commutes: normalize the cache key.
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let tv = self.level2var[top as usize];
        let (f0, f1) = self.cofactors(f, tv);
        let (g0, g1) = self.cofactors(g, tv);
        let lo = self.and_exists_rec(f0, g0, vars, max, memo);
        let res = if vars.contains(tv as usize) {
            if lo == BddRef::TRUE {
                // ∃x. (… ∨ hi) is already true: skip the hi branch.
                BddRef::TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, vars, max, memo);
                self.or_raw(lo, hi)
            }
        } else {
            let hi = self.and_exists_rec(f1, g1, vars, max, memo);
            self.mk(tv, lo, hi)
        };
        memo.insert(key, res);
        res
    }

    /// Renames variables along `map` — sorted `(from, to)` pairs. The
    /// mapping must be order-preserving (sources ascending, targets
    /// ascending) and total on the support of `r`; this is exactly the
    /// current↔next swap of an interleaved symbolic state encoding.
    ///
    /// # Panics
    /// Panics if the pairs are unsorted, if targets are not strictly
    /// increasing, or if a support variable of `r` has no mapping.
    pub fn rename(&mut self, r: BddRef, map: &[(usize, usize)]) -> BddRef {
        assert!(
            map.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
            "rename map must be sorted with strictly increasing targets"
        );
        assert!(map.iter().all(|&(_, to)| to < MAX_BDD_VARS));
        self.housekeep(&[r]);
        let mut memo = HashMap::new();
        self.rename_rec(r, map, &mut memo)
    }

    fn rename_rec(
        &mut self,
        r: BddRef,
        map: &[(usize, usize)],
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if r.is_terminal() {
            return r;
        }
        // Renaming commutes with complement: memoize the plain node.
        let reg = r.regular();
        let res = if let Some(&m) = memo.get(&reg) {
            m
        } else {
            let n = self.nodes[reg.index()];
            let to = map
                .binary_search_by_key(&(n.var as usize), |&(from, _)| from)
                .map(|i| map[i].1)
                .unwrap_or_else(|_| panic!("support variable {} has no rename mapping", n.var));
            let lo = self.rename_rec(n.lo, map, memo);
            let hi = self.rename_rec(n.hi, map, memo);
            // Rebuild through ite so the result is correct under any
            // variable order, not just order-preserving maps.
            let tv = self.var(to);
            let res = self.ite_raw(tv, hi, lo);
            memo.insert(reg, res);
            res
        };
        if r.is_complemented() {
            res.complement()
        } else {
            res
        }
    }

    /// Number of satisfying assignments counted over exactly the
    /// variables in `vars` (the support of `r` must be contained in
    /// `vars`; variables outside the set contribute no factor). Saturates
    /// at `u64::MAX`.
    ///
    /// # Panics
    /// Panics if `r` depends on a variable outside `vars`.
    pub fn sat_count_set(&self, r: BddRef, vars: &VarSet) -> u64 {
        assert!(vars.len() < 128, "sat_count_set supports at most 127 variables");
        let count = self.count_minterms(r, vars);
        u64::try_from(count).unwrap_or(u64::MAX)
    }

    /// Path-counting core shared by [`Bdd::sat_count`] and
    /// [`Bdd::sat_count_set`]: counts minterms of `r` over exactly the
    /// variables in `vars`, ranking set members by their current level so
    /// the count is order-independent.
    fn count_minterms(&self, r: BddRef, vars: &VarSet) -> u128 {
        // rank(v) = how many set variables sit above v in the current
        // order; never-created members rank below every created one.
        let key = |v: usize| -> u64 {
            match self.var2level.get(v) {
                Some(&l) if l != FREE_VAR => l as u64,
                _ => (1u64 << 32) + v as u64,
            }
        };
        let mut keys: Vec<u64> = vars.iter().map(key).collect();
        keys.sort_unstable();
        let total = keys.len() as u32;
        let rank = |v: u32| -> u32 {
            if v == u32::MAX {
                return total;
            }
            assert!(vars.contains(v as usize), "support variable {v} is not in the counting set");
            keys.binary_search(&key(v as usize)).expect("set key present") as u32
        };
        // base(idx) = minterms of the plain node function over the set
        // positions at and below its own rank.
        fn edge(
            bdd: &Bdd,
            e: BddRef,
            from: u32,
            total: u32,
            rank: &dyn Fn(u32) -> u32,
            memo: &mut HashMap<usize, u128>,
        ) -> u128 {
            let ke = rank(bdd.var_of(e));
            let b = if e.index() == 0 { 1 } else { base(bdd, e.index(), total, rank, memo) };
            let b = if e.is_complemented() { (1u128 << (total - ke)) - b } else { b };
            b << (ke - from)
        }
        fn base(
            bdd: &Bdd,
            idx: usize,
            total: u32,
            rank: &dyn Fn(u32) -> u32,
            memo: &mut HashMap<usize, u128>,
        ) -> u128 {
            if let Some(&c) = memo.get(&idx) {
                return c;
            }
            let n = bdd.nodes[idx];
            let k = rank(n.var);
            let c = edge(bdd, n.lo, k + 1, total, rank, memo)
                + edge(bdd, n.hi, k + 1, total, rank, memo);
            memo.insert(idx, c);
            c
        }
        let mut memo = HashMap::new();
        edge(self, r, 0, total, &rank, &mut memo)
    }
}

/// Exact check that a cover agrees with an ON/OFF specification: covers
/// all ON minterms and avoids all OFF minterms (don't-cares free). The
/// exact counterpart of the debug assertions in [`crate::minimize`].
pub fn cover_matches_spec(cover: &Cover, nvars: usize, on: &[u64], off: &[u64]) -> bool {
    let mut bdd = Bdd::new();
    let f = bdd.from_cover(cover);
    let mut on_set = BddRef::FALSE;
    for &m in on {
        let c = bdd.from_cube(&Cube::minterm(m, nvars));
        on_set = bdd.or(on_set, c);
    }
    let mut off_set = BddRef::FALSE;
    for &m in off {
        let c = bdd.from_cube(&Cube::minterm(m, nvars));
        off_set = bdd.or(off_set, c);
    }
    let nf = bdd.not(f);
    let miss = bdd.and(on_set, nf);
    let clash = bdd.and(off_set, f);
    miss == BddRef::FALSE && clash == BddRef::FALSE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    #[test]
    fn terminals_and_literals() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        assert!(bdd.eval(x, 0b1));
        assert!(!bdd.eval(x, 0b0));
        let nx = bdd.not(x);
        assert!(bdd.eval(nx, 0b0));
        assert_eq!(bdd.not(nx), x, "double negation is canonical");
    }

    #[test]
    fn canonicity_of_equivalent_forms() {
        let mut bdd = Bdd::new();
        // a·b + a·c == a·(b + c)
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let ac = bdd.and(a, c);
        let lhs = bdd.or(ab, ac);
        let bc = bdd.or(b, c);
        let rhs = bdd.and(a, bc);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn complement_edges_share_both_polarities() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        let before = bdd.node_count();
        let nf = bdd.not(f);
        assert_eq!(bdd.node_count(), before, "negation allocates nothing");
        assert_ne!(f, nf);
        assert_eq!(bdd.not(nf), f);
        for code in 0..4u64 {
            assert_eq!(bdd.eval(nf, code), !bdd.eval(f, code));
        }
    }

    #[test]
    fn xor_and_sat_count() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.xor(a, b);
        assert_eq!(bdd.sat_count(x, 2), 2);
        assert_eq!(bdd.sat_count(x, 3), 4); // free third variable doubles it
        assert_eq!(bdd.sat_count(BddRef::TRUE, 5), 32);
        assert_eq!(bdd.sat_count(BddRef::FALSE, 5), 0);
    }

    #[test]
    fn cover_roundtrip() {
        let mut bdd = Bdd::new();
        let cover =
            Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(2, false), (3, true)])]);
        let r = bdd.from_cover(&cover);
        for code in 0..16u64 {
            assert_eq!(bdd.eval(r, code), cover.eval(code), "code {code:04b}");
        }
        let back = bdd.to_cover(r);
        let mut bdd2 = Bdd::new();
        assert!(bdd2.covers_equal(&cover, &back));
    }

    #[test]
    fn implication_and_equality() {
        let mut bdd = Bdd::new();
        let small = Cover::from_cube(cube(&[(0, true), (1, true)]));
        let big = Cover::from_cube(cube(&[(0, true)]));
        assert!(bdd.cover_implies(&small, &big));
        assert!(!bdd.cover_implies(&big, &small));
        assert!(!bdd.covers_equal(&small, &big));
    }

    #[test]
    fn quantification() {
        let mut bdd = Bdd::new();
        // f = a·b: ∃a.f = b ; ∀a.f = 0 ; f|a=1 = b.
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        assert_eq!(bdd.exists(f, 0), b);
        assert_eq!(bdd.forall(f, 0), BddRef::FALSE);
        assert_eq!(bdd.restrict(f, 0, true), b);
        assert_eq!(bdd.restrict(f, 0, false), BddRef::FALSE);
        assert!(bdd.depends_on(f, 0));
        assert!(!bdd.depends_on(b, 0));
    }

    #[test]
    fn spec_matching() {
        // ON = {11}, OFF = {00} over 2 vars; x0 matches (1 on 11, 0 on 00).
        let f = Cover::from_cube(cube(&[(0, true)]));
        assert!(cover_matches_spec(&f, 2, &[0b11], &[0b00]));
        assert!(!cover_matches_spec(&f, 2, &[0b10], &[0b01]));
    }

    #[test]
    fn tautology_detection() {
        let mut bdd = Bdd::new();
        let taut = Cover::from_cubes([cube(&[(0, true)]), cube(&[(0, false)])]);
        let r = bdd.from_cover(&taut);
        assert!(bdd.is_tautology(r));
    }

    #[test]
    fn varset_basics() {
        let set: VarSet = [3usize, 70, 3].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(set.contains(3) && set.contains(70));
        assert!(!set.contains(4) && !set.contains(1000));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 70]);
        assert_eq!(set.max(), Some(70));
        assert!(VarSet::new().is_empty());
        assert_eq!(VarSet::new().max(), None);
    }

    #[test]
    fn exists_set_matches_chained_exists() {
        let mut bdd = Bdd::new();
        // f = (a ∧ b) ∨ (c ∧ ¬a)
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let na = bdd.not(a);
        let cna = bdd.and(c, na);
        let f = bdd.or(ab, cna);
        let set: VarSet = [0usize, 2].into_iter().collect();
        let chained = {
            let e0 = bdd.exists(f, 0);
            bdd.exists(e0, 2)
        };
        assert_eq!(bdd.exists_set(f, &set), chained);
        assert_eq!(bdd.exists_set(f, &VarSet::new()), f);
    }

    #[test]
    fn and_exists_is_the_relational_product() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let f = bdd.or(a, b);
        let nc = bdd.not(c);
        let g = bdd.xor(a, nc);
        let set: VarSet = [0usize].into_iter().collect();
        let conj = bdd.and(f, g);
        let direct = bdd.exists_set(conj, &set);
        assert_eq!(bdd.and_exists(f, g, &set), direct);
        // Empty quantification degrades to conjunction.
        assert_eq!(bdd.and_exists(f, g, &VarSet::new()), conj);
    }

    #[test]
    fn rename_shifts_interleaved_variables() {
        let mut bdd = Bdd::new();
        // f over "next" variables 1, 3: x1 ∧ ¬x3.
        let x1 = bdd.var(1);
        let x3 = bdd.var(3);
        let n3 = bdd.not(x3);
        let f = bdd.and(x1, n3);
        let down = bdd.rename(f, &[(1, 0), (3, 2)]);
        let x0 = bdd.var(0);
        let x2 = bdd.var(2);
        let n2 = bdd.not(x2);
        assert_eq!(down, bdd.and(x0, n2));
        // Shifting back is the identity.
        assert_eq!(bdd.rename(down, &[(0, 1), (2, 3)]), f);
    }

    #[test]
    fn sat_count_set_counts_over_the_given_set() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.xor(a, c); // depends on vars {0, 2} only
        let exact: VarSet = [0usize, 2].into_iter().collect();
        assert_eq!(bdd.sat_count_set(f, &exact), 2);
        // A free extra variable doubles the count; contiguous sets agree
        // with the classic counter.
        let wider: VarSet = [0usize, 2, 7].into_iter().collect();
        assert_eq!(bdd.sat_count_set(f, &wider), 4);
        let all: VarSet = (0..3).collect();
        assert_eq!(bdd.sat_count_set(f, &all), bdd.sat_count(f, 3));
        let set40: VarSet = (0..40).collect();
        assert_eq!(bdd.sat_count_set(BddRef::TRUE, &set40), 1 << 40);
        assert_eq!(bdd.sat_count_set(BddRef::FALSE, &set40), 0);
    }

    #[test]
    fn node_and_support_expose_structure() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(5);
        let f = bdd.and(a, b);
        let (var, lo, hi) = bdd.node(f).expect("non-terminal");
        assert_eq!(var, 0);
        assert_eq!(lo, BddRef::FALSE);
        assert_eq!(hi, b);
        assert_eq!(bdd.node(BddRef::TRUE), None);
        assert_eq!(bdd.support(f), vec![0, 5]);
        assert_eq!(bdd.support(BddRef::FALSE), Vec::<usize>::new());
    }

    #[test]
    fn variables_beyond_the_cube_world_work() {
        // Symbolic state vectors use indices past MAX_VARS: the classic
        // connectives must keep functioning there.
        let mut bdd = Bdd::new();
        let hi = bdd.var(200);
        let lo = bdd.var(3);
        let f = bdd.and(hi, lo);
        let set: VarSet = [3usize, 200].into_iter().collect();
        assert_eq!(bdd.sat_count_set(f, &set), 1);
        let e = bdd.exists_set(f, &[200usize].into_iter().collect());
        assert_eq!(e, lo);
    }

    #[test]
    #[should_panic(expected = "eval takes u64 minterm codes")]
    fn eval_rejects_high_variables() {
        let mut bdd = Bdd::new();
        let r = bdd.var(100);
        bdd.eval(r, 0);
    }

    #[test]
    #[should_panic(expected = "depends on variable")]
    fn sat_count_rejects_out_of_range_support() {
        let mut bdd = Bdd::new();
        let r = bdd.var(5);
        bdd.sat_count(r, 3);
    }

    #[test]
    fn node_sharing_keeps_store_small() {
        let mut bdd = Bdd::new();
        // Build the same function many times: the store must not grow.
        let mut r = BddRef::FALSE;
        for _ in 0..10 {
            let c = bdd.from_cover(&Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(2, true), (3, true)]),
            ]));
            r = bdd.or(r, c);
        }
        let after_first = bdd.node_count();
        for _ in 0..10 {
            let c = bdd.from_cover(&Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(2, true), (3, true)]),
            ]));
            r = bdd.or(r, c);
        }
        assert_eq!(bdd.node_count(), after_first);
    }

    #[test]
    fn gc_reclaims_garbage_and_keeps_roots_valid() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let keep = bdd.xor(a, b);
        // Build a pile of garbage.
        for v in 2..12 {
            let x = bdd.var(v);
            let t = bdd.and(keep, x);
            let _ = bdd.or(t, x);
        }
        let before = bdd.node_count();
        let collected = bdd.gc(&[keep]);
        assert!(collected > 0, "garbage must be reclaimed");
        assert_eq!(bdd.node_count(), before - collected);
        // The kept function is untouched.
        for code in 0..4u64 {
            assert_eq!(bdd.eval(keep, code), (code & 1 == 1) != (code >> 1 & 1 == 1));
        }
        // Freed slots are recycled, not leaked.
        let stats = bdd.stats();
        assert_eq!(stats.gc_runs, 1);
        assert_eq!(stats.collected_nodes, collected);
        let x = bdd.var(2);
        let again = bdd.and(keep, x);
        assert!(bdd.node_count() <= before, "slots are recycled");
        assert!(bdd.eval(again, 0b101));
    }

    #[test]
    fn protect_shields_roots_from_gc() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        bdd.protect(f);
        bdd.gc(&[]);
        assert!(bdd.eval(f, 0b11), "protected root survives");
        assert!(!bdd.eval(f, 0b01));
        bdd.unprotect(f);
        bdd.gc(&[]);
        assert_eq!(bdd.node_count(), 0, "unprotected root is reclaimed");
    }

    #[test]
    fn gc_watermark_collects_automatically() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        bdd.protect(f);
        bdd.set_gc_watermark(Some(4));
        for v in 2..30 {
            let x = bdd.var(v);
            let _ = bdd.xor(f, x);
        }
        assert!(bdd.stats().gc_runs > 0, "watermark must trigger collection");
        assert!(bdd.eval(f, 0b11));
    }

    #[test]
    fn reorder_permutes_without_changing_functions() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let f = bdd.or(ab, c);
        let count = bdd.sat_count(f, 3);
        bdd.reorder(&[2, 0, 1]);
        assert_eq!(bdd.order(), vec![2, 0, 1]);
        for code in 0..8u64 {
            let expect = (code & 1 == 1 && code >> 1 & 1 == 1) || code >> 2 & 1 == 1;
            assert_eq!(bdd.eval(f, code), expect, "code {code:03b}");
        }
        assert_eq!(bdd.sat_count(f, 3), count);
        // Results computed after the reorder still interoperate.
        assert_eq!(bdd.restrict(f, 2, true), BddRef::TRUE);
        let g = bdd.and(f, c);
        assert_eq!(g, c, "f ∧ c = c since c implies f");
        bdd.reorder(&[0, 1, 2]);
        assert_eq!(bdd.order(), vec![0, 1, 2]);
        assert_eq!(bdd.sat_count(f, 3), count);
        assert!(bdd.stats().reorders >= 2);
        assert!(bdd.stats().level_swaps > 0);
    }

    #[test]
    fn sift_reduces_a_bad_order() {
        let mut bdd = Bdd::new();
        // f = x0·x3 + x1·x4 + x2·x5 is the classic order-sensitive
        // function: interleaved pairs are linear, split halves blow up.
        bdd.reorder(&[0, 1, 2, 3, 4, 5]);
        let mut f = BddRef::FALSE;
        for i in 0..3 {
            let x = bdd.var(i);
            let y = bdd.var(i + 3);
            let t = bdd.and(x, y);
            f = bdd.or(f, t);
        }
        let before = {
            bdd.gc(&[f]);
            bdd.node_count()
        };
        bdd.sift(&[f]);
        let after = bdd.node_count();
        assert!(after <= before, "sifting never grows the chosen layout");
        assert!(after < before, "split-pair order must shrink under sifting");
        for code in 0..64u64 {
            let expect = (0..3).any(|i| code >> i & 1 == 1 && code >> (i + 3) & 1 == 1);
            assert_eq!(bdd.eval(f, code), expect, "code {code:06b}");
        }
        assert!(bdd.stats().reorders >= 1);
    }
}
