//! Reduced Ordered Binary Decision Diagrams.
//!
//! A compact ROBDD package with a unique table and an ITE computed
//! cache. The SOP engine ([`crate::minimize`]) is heuristic; BDDs give
//! the *exact* side: tautology, equivalence, complementation and
//! satisfy-count, used to cross-check covers and to validate the
//! minimizer in tests. Variables use the same indices as [`crate::Cube`]
//! (natural ordering `x0 < x1 < …`).
//!
//! On top of the classic connectives the manager provides the symbolic
//! model-checking primitives — set-wise quantification
//! ([`Bdd::exists_set`]), the relational product ([`Bdd::and_exists`]),
//! order-preserving variable renaming ([`Bdd::rename`]) and
//! set-restricted satisfy counting ([`Bdd::sat_count_set`]) — used by the
//! symbolic reachability engine. Those set-based operations work on up to
//! [`MAX_BDD_VARS`] variables; the minterm-code APIs ([`Bdd::eval`],
//! [`Bdd::sat_count`]) and the [`Cube`]/[`Cover`] conversions remain
//! bounded by [`crate::cube::MAX_VARS`] (= 64) and assert it.

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use std::collections::HashMap;

/// Hard cap on BDD variable indices. Far above [`crate::cube::MAX_VARS`]
/// (the bound that still applies to the cube/cover conversions): symbolic
/// state vectors interleave current/next copies of every place and signal
/// of a net, which overflows the 64-variable cube world long before it
/// stresses the node store.
pub const MAX_BDD_VARS: usize = 4096;

/// A set of BDD variables, used by the quantification, relational-product
/// and counting operations. Stored as a bitset; construction order is
/// irrelevant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarSet {
    bits: Vec<u64>,
}

impl VarSet {
    /// The empty set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Adds a variable to the set.
    ///
    /// # Panics
    /// Panics if `var >= MAX_BDD_VARS`.
    pub fn insert(&mut self, var: usize) {
        assert!(var < MAX_BDD_VARS, "variable index {var} out of range");
        let word = var / 64;
        if word >= self.bits.len() {
            self.bits.resize(word + 1, 0);
        }
        self.bits[word] |= 1u64 << (var % 64);
    }

    /// Whether `var` is in the set.
    pub fn contains(&self, var: usize) -> bool {
        self.bits.get(var / 64).is_some_and(|w| w >> (var % 64) & 1 == 1)
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// The members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .flat_map(|(i, &w)| (0..64).filter(move |b| w >> b & 1 == 1).map(move |b| i * 64 + b))
    }

    /// The largest member, if any.
    pub fn max(&self) -> Option<usize> {
        self.bits
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &w)| w != 0)
            .map(|(i, &w)| i * 64 + 63 - w.leading_zeros() as usize)
    }
}

impl FromIterator<usize> for VarSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = VarSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

/// Reference to a BDD node (terminals included). Only meaningful together
/// with the [`Bdd`] manager that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A BDD manager: owns the node store, the unique table and the operation
/// cache.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
}

impl Bdd {
    /// Creates an empty manager.
    pub fn new() -> Self {
        // Index 0/1 are virtual terminals; the node store starts with two
        // placeholders so indices line up.
        let dummy = Node { var: u32::MAX, lo: BddRef::FALSE, hi: BddRef::FALSE };
        Bdd { nodes: vec![dummy, dummy], unique: HashMap::new(), ite_cache: HashMap::new() }
    }

    /// Number of live (non-terminal) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn var_of(&self, r: BddRef) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.nodes[r.0 as usize].var
        }
    }

    fn cofactors(&self, r: BddRef, var: u32) -> (BddRef, BddRef) {
        if r.is_terminal() || self.nodes[r.0 as usize].var != var {
            (r, r)
        } else {
            let n = self.nodes[r.0 as usize];
            (n.lo, n.hi)
        }
    }

    /// The single-variable function `x_var`.
    ///
    /// # Panics
    /// Panics if `var >= MAX_BDD_VARS`. (The [`Cube`]/[`Cover`]
    /// conversions stay bounded by the tighter [`crate::cube::MAX_VARS`].)
    pub fn var(&mut self, var: usize) -> BddRef {
        assert!(var < MAX_BDD_VARS, "variable index {var} out of range");
        self.mk(var as u32, BddRef::FALSE, BddRef::TRUE)
    }

    /// The literal `x_var` or `x̄_var`.
    pub fn literal(&mut self, lit: Literal) -> BddRef {
        let v = self.var(lit.var);
        if lit.phase {
            v
        } else {
            self.not(v)
        }
    }

    /// If-then-else: the universal connective all operations reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, BddRef::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        self.ite(a, BddRef::FALSE, BddRef::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    /// Builds the BDD of a cube (conjunction of literals).
    pub fn from_cube(&mut self, cube: &Cube) -> BddRef {
        let mut acc = BddRef::TRUE;
        // Build bottom-up (highest variable first) for linear growth.
        let lits: Vec<Literal> = cube.literals().collect();
        for lit in lits.into_iter().rev() {
            let l = self.literal(lit);
            acc = self.and(l, acc);
        }
        acc
    }

    /// Builds the BDD of a sum-of-products cover.
    pub fn from_cover(&mut self, cover: &Cover) -> BddRef {
        let mut acc = BddRef::FALSE;
        for cube in cover.cubes() {
            let c = self.from_cube(cube);
            acc = self.or(acc, c);
        }
        acc
    }

    /// Evaluates the function on a minterm code. A `u64` code addresses
    /// 64 variables, so like every minterm-code API this is only defined
    /// for functions whose support stays below [`crate::cube::MAX_VARS`].
    ///
    /// # Panics
    /// Panics if the function depends on a variable `>= 64`.
    pub fn eval(&self, mut r: BddRef, code: u64) -> bool {
        while !r.is_terminal() {
            let n = self.nodes[r.0 as usize];
            assert!(n.var < 64, "eval takes u64 minterm codes; variable {} is out of range", n.var);
            r = if code >> n.var & 1 == 1 { n.hi } else { n.lo };
        }
        r == BddRef::TRUE
    }

    /// Whether the function is the constant true (canonicity makes this a
    /// pointer test).
    pub fn is_tautology(&self, r: BddRef) -> bool {
        r == BddRef::TRUE
    }

    /// Whether two covers denote the same boolean function.
    pub fn covers_equal(&mut self, a: &Cover, b: &Cover) -> bool {
        let ra = self.from_cover(a);
        let rb = self.from_cover(b);
        ra == rb
    }

    /// Whether cover `a` implies cover `b` (`a ⊆ b` as sets of minterms).
    pub fn cover_implies(&mut self, a: &Cover, b: &Cover) -> bool {
        let ra = self.from_cover(a);
        let rb = self.from_cover(b);
        let nb = self.not(rb);
        self.and(ra, nb) == BddRef::FALSE
    }

    /// Number of satisfying assignments over `nvars` variables. The
    /// function's support must lie within `0..nvars` (use
    /// [`Bdd::sat_count_set`] for sparse or high-index variable sets).
    ///
    /// # Panics
    /// Panics if the function depends on a variable `>= nvars`.
    pub fn sat_count(&self, r: BddRef, nvars: usize) -> u64 {
        fn rec(bdd: &Bdd, r: BddRef, nvars: u32, memo: &mut HashMap<BddRef, u64>) -> u64 {
            // Count over variables var_of(r)..nvars (i.e. weight each
            // path by skipped levels).
            match r {
                BddRef::FALSE => 0,
                BddRef::TRUE => 1,
                _ => {
                    if let Some(&c) = memo.get(&r) {
                        return c;
                    }
                    let n = bdd.nodes[r.0 as usize];
                    assert!(
                        n.var < nvars,
                        "sat_count over {nvars} variables, but the function depends on \
                         variable {}",
                        n.var
                    );
                    let lo = rec(bdd, n.lo, nvars, memo);
                    let hi = rec(bdd, n.hi, nvars, memo);
                    let skip_lo = bdd.var_of(n.lo).min(nvars) - n.var - 1;
                    let skip_hi = bdd.var_of(n.hi).min(nvars) - n.var - 1;
                    let c = (lo << skip_lo) + (hi << skip_hi);
                    memo.insert(r, c);
                    c
                }
            }
        }
        let nv = nvars as u32;
        let mut memo = HashMap::new();
        let base = rec(self, r, nv, &mut memo);
        base << self.var_of(r).min(nv)
    }

    /// Extracts an (irredundant-path) SOP cover: one cube per 1-path.
    /// Cubes are bounded by [`crate::cube::MAX_VARS`], so the function's
    /// support must stay below 64 (the [`Literal`] constructor asserts).
    pub fn to_cover(&self, r: BddRef) -> Cover {
        let mut cubes = Vec::new();
        let mut path: Vec<Literal> = Vec::new();
        self.paths(r, &mut path, &mut cubes);
        Cover::from_cubes(cubes)
    }

    fn paths(&self, r: BddRef, path: &mut Vec<Literal>, out: &mut Vec<Cube>) {
        match r {
            BddRef::FALSE => {}
            BddRef::TRUE => {
                out.push(Cube::from_literals(path.iter().copied()).expect("path is consistent"));
            }
            _ => {
                let n = self.nodes[r.0 as usize];
                path.push(Literal::neg(n.var as usize));
                self.paths(n.lo, path, out);
                path.pop();
                path.push(Literal::pos(n.var as usize));
                self.paths(n.hi, path, out);
                path.pop();
            }
        }
    }

    /// Existential quantification of a variable.
    pub fn exists(&mut self, r: BddRef, var: usize) -> BddRef {
        let (lo, hi) = self.restrict_pair(r, var);
        self.or(lo, hi)
    }

    /// Universal quantification of a variable.
    pub fn forall(&mut self, r: BddRef, var: usize) -> BddRef {
        let (lo, hi) = self.restrict_pair(r, var);
        self.and(lo, hi)
    }

    /// Restriction `f|_{var=value}`.
    pub fn restrict(&mut self, r: BddRef, var: usize, value: bool) -> BddRef {
        let (lo, hi) = self.restrict_pair(r, var);
        if value {
            hi
        } else {
            lo
        }
    }

    fn restrict_pair(&mut self, r: BddRef, var: usize) -> (BddRef, BddRef) {
        let v = var as u32;
        fn rec(
            bdd: &mut Bdd,
            r: BddRef,
            v: u32,
            value: bool,
            memo: &mut HashMap<BddRef, BddRef>,
        ) -> BddRef {
            if r.is_terminal() || bdd.var_of(r) > v {
                return r;
            }
            if let Some(&m) = memo.get(&r) {
                return m;
            }
            let n = bdd.nodes[r.0 as usize];
            let res = if n.var == v {
                if value {
                    n.hi
                } else {
                    n.lo
                }
            } else {
                let lo = rec(bdd, n.lo, v, value, memo);
                let hi = rec(bdd, n.hi, v, value, memo);
                bdd.mk(n.var, lo, hi)
            };
            memo.insert(r, res);
            res
        }
        let lo = rec(self, r, v, false, &mut HashMap::new());
        let hi = rec(self, r, v, true, &mut HashMap::new());
        (lo, hi)
    }

    /// Whether the function depends on `var`.
    pub fn depends_on(&mut self, r: BddRef, var: usize) -> bool {
        let (lo, hi) = self.restrict_pair(r, var);
        lo != hi
    }

    /// The decomposition of a non-terminal node: `(var, lo, hi)` with
    /// `lo = f|_{var=0}` and `hi = f|_{var=1}`. `None` for terminals.
    pub fn node(&self, r: BddRef) -> Option<(usize, BddRef, BddRef)> {
        if r.is_terminal() {
            None
        } else {
            let n = self.nodes[r.0 as usize];
            Some((n.var as usize, n.lo, n.hi))
        }
    }

    /// The support of a function: every variable it depends on, ascending.
    pub fn support(&self, r: BddRef) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = Vec::new();
        let mut stack = vec![r];
        while let Some(x) = stack.pop() {
            if x.is_terminal() || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x.0 as usize];
            vars.push(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// Existential quantification of every variable in `vars` at once
    /// (`∃ vars. f`). Equivalent to chaining [`Bdd::exists`] but with one
    /// memoized traversal.
    pub fn exists_set(&mut self, r: BddRef, vars: &VarSet) -> BddRef {
        let Some(max) = vars.max() else { return r };
        let mut memo = HashMap::new();
        self.exists_set_rec(r, vars, max as u32, &mut memo)
    }

    fn exists_set_rec(
        &mut self,
        r: BddRef,
        vars: &VarSet,
        max: u32,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        // Below the deepest quantified variable the function is untouched.
        if r.is_terminal() || self.var_of(r) > max {
            return r;
        }
        if let Some(&m) = memo.get(&r) {
            return m;
        }
        let n = self.nodes[r.0 as usize];
        let lo = self.exists_set_rec(n.lo, vars, max, memo);
        let hi = self.exists_set_rec(n.hi, vars, max, memo);
        let res =
            if vars.contains(n.var as usize) { self.or(lo, hi) } else { self.mk(n.var, lo, hi) };
        memo.insert(r, res);
        res
    }

    /// The relational product `∃ vars. f ∧ g` in one pass — the image
    /// operator of symbolic reachability (`f` a state set, `g` a
    /// transition relation, `vars` the current-state variables). Avoids
    /// ever building the (often much larger) conjunction.
    pub fn and_exists(&mut self, f: BddRef, g: BddRef, vars: &VarSet) -> BddRef {
        let max = match vars.max() {
            Some(m) => m as u32,
            None => return self.and(f, g),
        };
        let mut memo = HashMap::new();
        self.and_exists_rec(f, g, vars, max, &mut memo)
    }

    fn and_exists_rec(
        &mut self,
        f: BddRef,
        g: BddRef,
        vars: &VarSet,
        max: u32,
        memo: &mut HashMap<(BddRef, BddRef), BddRef>,
    ) -> BddRef {
        if f == BddRef::FALSE || g == BddRef::FALSE {
            return BddRef::FALSE;
        }
        if f == BddRef::TRUE && g == BddRef::TRUE {
            return BddRef::TRUE;
        }
        let top = self.var_of(f).min(self.var_of(g));
        if top > max {
            // No quantified variable remains below: plain conjunction.
            return self.and(f, g);
        }
        // ∧ commutes: normalize the cache key.
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = memo.get(&key) {
            return r;
        }
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let lo = self.and_exists_rec(f0, g0, vars, max, memo);
        let res = if vars.contains(top as usize) {
            if lo == BddRef::TRUE {
                // ∃x. (… ∨ hi) is already true: skip the hi branch.
                BddRef::TRUE
            } else {
                let hi = self.and_exists_rec(f1, g1, vars, max, memo);
                self.or(lo, hi)
            }
        } else {
            let hi = self.and_exists_rec(f1, g1, vars, max, memo);
            self.mk(top, lo, hi)
        };
        memo.insert(key, res);
        res
    }

    /// Renames variables along `map` — sorted `(from, to)` pairs. The
    /// mapping must be order-preserving (sources ascending, targets
    /// ascending) and total on the support of `r`, so the renamed diagram
    /// keeps the variable order without reordering; this is exactly the
    /// current↔next swap of an interleaved symbolic state encoding.
    ///
    /// # Panics
    /// Panics if the pairs are unsorted, if targets are not strictly
    /// increasing, or if a support variable of `r` has no mapping.
    pub fn rename(&mut self, r: BddRef, map: &[(usize, usize)]) -> BddRef {
        assert!(
            map.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
            "rename map must be sorted with strictly increasing targets"
        );
        assert!(map.iter().all(|&(_, to)| to < MAX_BDD_VARS));
        let mut memo = HashMap::new();
        self.rename_rec(r, map, &mut memo)
    }

    fn rename_rec(
        &mut self,
        r: BddRef,
        map: &[(usize, usize)],
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        if r.is_terminal() {
            return r;
        }
        if let Some(&m) = memo.get(&r) {
            return m;
        }
        let n = self.nodes[r.0 as usize];
        let to = map
            .binary_search_by_key(&(n.var as usize), |&(from, _)| from)
            .map(|i| map[i].1 as u32)
            .unwrap_or_else(|_| panic!("support variable {} has no rename mapping", n.var));
        let lo = self.rename_rec(n.lo, map, memo);
        let hi = self.rename_rec(n.hi, map, memo);
        let res = self.mk(to, lo, hi);
        memo.insert(r, res);
        res
    }

    /// Number of satisfying assignments counted over exactly the
    /// variables in `vars` (the support of `r` must be contained in
    /// `vars`; variables outside the set contribute no factor). Saturates
    /// at `u64::MAX`.
    ///
    /// # Panics
    /// Panics if `r` depends on a variable outside `vars`.
    pub fn sat_count_set(&self, r: BddRef, vars: &VarSet) -> u64 {
        // rank(v) = how many set variables precede v; terminals rank at
        // the full set size.
        let sorted: Vec<u32> = vars.iter().map(|v| v as u32).collect();
        let total = sorted.len() as u32;
        assert!(total < 128, "sat_count_set supports at most 127 variables");
        let rank = |v: u32| -> u32 {
            if v == u32::MAX {
                return total;
            }
            match sorted.binary_search(&v) {
                Ok(i) => i as u32,
                Err(_) => panic!("support variable {v} is not in the counting set"),
            }
        };
        fn rec(
            bdd: &Bdd,
            r: BddRef,
            rank: &dyn Fn(u32) -> u32,
            memo: &mut HashMap<BddRef, u128>,
        ) -> u128 {
            match r {
                BddRef::FALSE => 0,
                BddRef::TRUE => 1,
                _ => {
                    if let Some(&c) = memo.get(&r) {
                        return c;
                    }
                    let n = bdd.nodes[r.0 as usize];
                    let lo = rec(bdd, n.lo, rank, memo);
                    let hi = rec(bdd, n.hi, rank, memo);
                    let here = rank(n.var);
                    let skip_lo = rank(bdd.var_of(n.lo)) - here - 1;
                    let skip_hi = rank(bdd.var_of(n.hi)) - here - 1;
                    let c = (lo << skip_lo) + (hi << skip_hi);
                    memo.insert(r, c);
                    c
                }
            }
        }
        let mut memo = HashMap::new();
        let base = rec(self, r, &rank, &mut memo);
        let count = base << rank(self.var_of(r));
        u64::try_from(count).unwrap_or(u64::MAX)
    }
}

/// Exact check that a cover agrees with an ON/OFF specification: covers
/// all ON minterms and avoids all OFF minterms (don't-cares free). The
/// exact counterpart of the debug assertions in [`crate::minimize`].
pub fn cover_matches_spec(cover: &Cover, nvars: usize, on: &[u64], off: &[u64]) -> bool {
    let mut bdd = Bdd::new();
    let f = bdd.from_cover(cover);
    let mut on_set = BddRef::FALSE;
    for &m in on {
        let c = bdd.from_cube(&Cube::minterm(m, nvars));
        on_set = bdd.or(on_set, c);
    }
    let mut off_set = BddRef::FALSE;
    for &m in off {
        let c = bdd.from_cube(&Cube::minterm(m, nvars));
        off_set = bdd.or(off_set, c);
    }
    let nf = bdd.not(f);
    let miss = bdd.and(on_set, nf);
    let clash = bdd.and(off_set, f);
    miss == BddRef::FALSE && clash == BddRef::FALSE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    #[test]
    fn terminals_and_literals() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        assert!(bdd.eval(x, 0b1));
        assert!(!bdd.eval(x, 0b0));
        let nx = bdd.not(x);
        assert!(bdd.eval(nx, 0b0));
        assert_eq!(bdd.not(nx), x, "double negation is canonical");
    }

    #[test]
    fn canonicity_of_equivalent_forms() {
        let mut bdd = Bdd::new();
        // a·b + a·c == a·(b + c)
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let ac = bdd.and(a, c);
        let lhs = bdd.or(ab, ac);
        let bc = bdd.or(b, c);
        let rhs = bdd.and(a, bc);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_and_sat_count() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.xor(a, b);
        assert_eq!(bdd.sat_count(x, 2), 2);
        assert_eq!(bdd.sat_count(x, 3), 4); // free third variable doubles it
        assert_eq!(bdd.sat_count(BddRef::TRUE, 5), 32);
        assert_eq!(bdd.sat_count(BddRef::FALSE, 5), 0);
    }

    #[test]
    fn cover_roundtrip() {
        let mut bdd = Bdd::new();
        let cover =
            Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(2, false), (3, true)])]);
        let r = bdd.from_cover(&cover);
        for code in 0..16u64 {
            assert_eq!(bdd.eval(r, code), cover.eval(code), "code {code:04b}");
        }
        let back = bdd.to_cover(r);
        let mut bdd2 = Bdd::new();
        assert!(bdd2.covers_equal(&cover, &back));
    }

    #[test]
    fn implication_and_equality() {
        let mut bdd = Bdd::new();
        let small = Cover::from_cube(cube(&[(0, true), (1, true)]));
        let big = Cover::from_cube(cube(&[(0, true)]));
        assert!(bdd.cover_implies(&small, &big));
        assert!(!bdd.cover_implies(&big, &small));
        assert!(!bdd.covers_equal(&small, &big));
    }

    #[test]
    fn quantification() {
        let mut bdd = Bdd::new();
        // f = a·b: ∃a.f = b ; ∀a.f = 0 ; f|a=1 = b.
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        assert_eq!(bdd.exists(f, 0), b);
        assert_eq!(bdd.forall(f, 0), BddRef::FALSE);
        assert_eq!(bdd.restrict(f, 0, true), b);
        assert_eq!(bdd.restrict(f, 0, false), BddRef::FALSE);
        assert!(bdd.depends_on(f, 0));
        assert!(!bdd.depends_on(b, 0));
    }

    #[test]
    fn spec_matching() {
        // ON = {11}, OFF = {00} over 2 vars; x0 matches (1 on 11, 0 on 00).
        let f = Cover::from_cube(cube(&[(0, true)]));
        assert!(cover_matches_spec(&f, 2, &[0b11], &[0b00]));
        assert!(!cover_matches_spec(&f, 2, &[0b10], &[0b01]));
    }

    #[test]
    fn tautology_detection() {
        let mut bdd = Bdd::new();
        let taut = Cover::from_cubes([cube(&[(0, true)]), cube(&[(0, false)])]);
        let r = bdd.from_cover(&taut);
        assert!(bdd.is_tautology(r));
    }

    #[test]
    fn varset_basics() {
        let set: VarSet = [3usize, 70, 3].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(set.contains(3) && set.contains(70));
        assert!(!set.contains(4) && !set.contains(1000));
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 70]);
        assert_eq!(set.max(), Some(70));
        assert!(VarSet::new().is_empty());
        assert_eq!(VarSet::new().max(), None);
    }

    #[test]
    fn exists_set_matches_chained_exists() {
        let mut bdd = Bdd::new();
        // f = (a ∧ b) ∨ (c ∧ ¬a)
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let na = bdd.not(a);
        let cna = bdd.and(c, na);
        let f = bdd.or(ab, cna);
        let set: VarSet = [0usize, 2].into_iter().collect();
        let chained = {
            let e0 = bdd.exists(f, 0);
            bdd.exists(e0, 2)
        };
        assert_eq!(bdd.exists_set(f, &set), chained);
        assert_eq!(bdd.exists_set(f, &VarSet::new()), f);
    }

    #[test]
    fn and_exists_is_the_relational_product() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let f = bdd.or(a, b);
        let nc = bdd.not(c);
        let g = bdd.xor(a, nc);
        let set: VarSet = [0usize].into_iter().collect();
        let conj = bdd.and(f, g);
        let direct = bdd.exists_set(conj, &set);
        assert_eq!(bdd.and_exists(f, g, &set), direct);
        // Empty quantification degrades to conjunction.
        assert_eq!(bdd.and_exists(f, g, &VarSet::new()), conj);
    }

    #[test]
    fn rename_shifts_interleaved_variables() {
        let mut bdd = Bdd::new();
        // f over "next" variables 1, 3: x1 ∧ ¬x3.
        let x1 = bdd.var(1);
        let x3 = bdd.var(3);
        let n3 = bdd.not(x3);
        let f = bdd.and(x1, n3);
        let down = bdd.rename(f, &[(1, 0), (3, 2)]);
        let x0 = bdd.var(0);
        let x2 = bdd.var(2);
        let n2 = bdd.not(x2);
        assert_eq!(down, bdd.and(x0, n2));
        // Shifting back is the identity.
        assert_eq!(bdd.rename(down, &[(0, 1), (2, 3)]), f);
    }

    #[test]
    fn sat_count_set_counts_over_the_given_set() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let c = bdd.var(2);
        let f = bdd.xor(a, c); // depends on vars {0, 2} only
        let exact: VarSet = [0usize, 2].into_iter().collect();
        assert_eq!(bdd.sat_count_set(f, &exact), 2);
        // A free extra variable doubles the count; contiguous sets agree
        // with the classic counter.
        let wider: VarSet = [0usize, 2, 7].into_iter().collect();
        assert_eq!(bdd.sat_count_set(f, &wider), 4);
        let all: VarSet = (0..3).collect();
        assert_eq!(bdd.sat_count_set(f, &all), bdd.sat_count(f, 3));
        let set40: VarSet = (0..40).collect();
        assert_eq!(bdd.sat_count_set(BddRef::TRUE, &set40), 1 << 40);
        assert_eq!(bdd.sat_count_set(BddRef::FALSE, &set40), 0);
    }

    #[test]
    fn node_and_support_expose_structure() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(5);
        let f = bdd.and(a, b);
        let (var, lo, hi) = bdd.node(f).expect("non-terminal");
        assert_eq!(var, 0);
        assert_eq!(lo, BddRef::FALSE);
        assert_eq!(hi, b);
        assert_eq!(bdd.node(BddRef::TRUE), None);
        assert_eq!(bdd.support(f), vec![0, 5]);
        assert_eq!(bdd.support(BddRef::FALSE), Vec::<usize>::new());
    }

    #[test]
    fn variables_beyond_the_cube_world_work() {
        // Symbolic state vectors use indices past MAX_VARS: the classic
        // connectives must keep functioning there.
        let mut bdd = Bdd::new();
        let hi = bdd.var(200);
        let lo = bdd.var(3);
        let f = bdd.and(hi, lo);
        let set: VarSet = [3usize, 200].into_iter().collect();
        assert_eq!(bdd.sat_count_set(f, &set), 1);
        let e = bdd.exists_set(f, &[200usize].into_iter().collect());
        assert_eq!(e, lo);
    }

    #[test]
    #[should_panic(expected = "eval takes u64 minterm codes")]
    fn eval_rejects_high_variables() {
        let mut bdd = Bdd::new();
        let r = bdd.var(100);
        bdd.eval(r, 0);
    }

    #[test]
    #[should_panic(expected = "depends on variable")]
    fn sat_count_rejects_out_of_range_support() {
        let mut bdd = Bdd::new();
        let r = bdd.var(5);
        bdd.sat_count(r, 3);
    }

    #[test]
    fn node_sharing_keeps_store_small() {
        let mut bdd = Bdd::new();
        // Build the same function many times: the store must not grow.
        let mut r = BddRef::FALSE;
        for _ in 0..10 {
            let c = bdd.from_cover(&Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(2, true), (3, true)]),
            ]));
            r = bdd.or(r, c);
        }
        let after_first = bdd.node_count();
        for _ in 0..10 {
            let c = bdd.from_cover(&Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(2, true), (3, true)]),
            ]));
            r = bdd.or(r, c);
        }
        assert_eq!(bdd.node_count(), after_first);
    }
}
