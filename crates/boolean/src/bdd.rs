//! Reduced Ordered Binary Decision Diagrams.
//!
//! A compact ROBDD package with a unique table and an ITE computed
//! cache. The SOP engine ([`crate::minimize`]) is heuristic; BDDs give
//! the *exact* side: tautology, equivalence, complementation and
//! satisfy-count, used to cross-check covers and to validate the
//! minimizer in tests. Variables use the same indices as [`crate::Cube`]
//! (natural ordering `x0 < x1 < …`).

use crate::cover::Cover;
use crate::cube::{Cube, Literal, MAX_VARS};
use std::collections::HashMap;

/// Reference to a BDD node (terminals included). Only meaningful together
/// with the [`Bdd`] manager that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A BDD manager: owns the node store, the unique table and the operation
/// cache.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
}

impl Bdd {
    /// Creates an empty manager.
    pub fn new() -> Self {
        // Index 0/1 are virtual terminals; the node store starts with two
        // placeholders so indices line up.
        let dummy = Node { var: u32::MAX, lo: BddRef::FALSE, hi: BddRef::FALSE };
        Bdd { nodes: vec![dummy, dummy], unique: HashMap::new(), ite_cache: HashMap::new() }
    }

    /// Number of live (non-terminal) nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 2
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    fn var_of(&self, r: BddRef) -> u32 {
        if r.is_terminal() {
            u32::MAX
        } else {
            self.nodes[r.0 as usize].var
        }
    }

    fn cofactors(&self, r: BddRef, var: u32) -> (BddRef, BddRef) {
        if r.is_terminal() || self.nodes[r.0 as usize].var != var {
            (r, r)
        } else {
            let n = self.nodes[r.0 as usize];
            (n.lo, n.hi)
        }
    }

    /// The single-variable function `x_var`.
    ///
    /// # Panics
    /// Panics if `var >= MAX_VARS`.
    pub fn var(&mut self, var: usize) -> BddRef {
        assert!(var < MAX_VARS);
        self.mk(var as u32, BddRef::FALSE, BddRef::TRUE)
    }

    /// The literal `x_var` or `x̄_var`.
    pub fn literal(&mut self, lit: Literal) -> BddRef {
        let v = self.var(lit.var);
        if lit.phase {
            v
        } else {
            self.not(v)
        }
    }

    /// If-then-else: the universal connective all operations reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, b, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        self.ite(a, BddRef::TRUE, b)
    }

    /// Negation.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        self.ite(a, BddRef::FALSE, BddRef::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: BddRef, b: BddRef) -> BddRef {
        let nb = self.not(b);
        self.ite(a, nb, b)
    }

    /// Builds the BDD of a cube (conjunction of literals).
    pub fn from_cube(&mut self, cube: &Cube) -> BddRef {
        let mut acc = BddRef::TRUE;
        // Build bottom-up (highest variable first) for linear growth.
        let lits: Vec<Literal> = cube.literals().collect();
        for lit in lits.into_iter().rev() {
            let l = self.literal(lit);
            acc = self.and(l, acc);
        }
        acc
    }

    /// Builds the BDD of a sum-of-products cover.
    pub fn from_cover(&mut self, cover: &Cover) -> BddRef {
        let mut acc = BddRef::FALSE;
        for cube in cover.cubes() {
            let c = self.from_cube(cube);
            acc = self.or(acc, c);
        }
        acc
    }

    /// Evaluates the function on a minterm code.
    pub fn eval(&self, mut r: BddRef, code: u64) -> bool {
        while !r.is_terminal() {
            let n = self.nodes[r.0 as usize];
            r = if code >> n.var & 1 == 1 { n.hi } else { n.lo };
        }
        r == BddRef::TRUE
    }

    /// Whether the function is the constant true (canonicity makes this a
    /// pointer test).
    pub fn is_tautology(&self, r: BddRef) -> bool {
        r == BddRef::TRUE
    }

    /// Whether two covers denote the same boolean function.
    pub fn covers_equal(&mut self, a: &Cover, b: &Cover) -> bool {
        let ra = self.from_cover(a);
        let rb = self.from_cover(b);
        ra == rb
    }

    /// Whether cover `a` implies cover `b` (`a ⊆ b` as sets of minterms).
    pub fn cover_implies(&mut self, a: &Cover, b: &Cover) -> bool {
        let ra = self.from_cover(a);
        let rb = self.from_cover(b);
        let nb = self.not(rb);
        self.and(ra, nb) == BddRef::FALSE
    }

    /// Number of satisfying assignments over `nvars` variables.
    pub fn sat_count(&self, r: BddRef, nvars: usize) -> u64 {
        fn rec(bdd: &Bdd, r: BddRef, nvars: u32, memo: &mut HashMap<BddRef, u64>) -> u64 {
            // Count over variables var_of(r)..nvars (i.e. weight each
            // path by skipped levels).
            match r {
                BddRef::FALSE => 0,
                BddRef::TRUE => 1,
                _ => {
                    if let Some(&c) = memo.get(&r) {
                        return c;
                    }
                    let n = bdd.nodes[r.0 as usize];
                    let lo = rec(bdd, n.lo, nvars, memo);
                    let hi = rec(bdd, n.hi, nvars, memo);
                    let skip_lo = bdd.var_of(n.lo).min(nvars) - n.var - 1;
                    let skip_hi = bdd.var_of(n.hi).min(nvars) - n.var - 1;
                    let c = (lo << skip_lo) + (hi << skip_hi);
                    memo.insert(r, c);
                    c
                }
            }
        }
        let nv = nvars as u32;
        let mut memo = HashMap::new();
        let base = rec(self, r, nv, &mut memo);
        base << self.var_of(r).min(nv)
    }

    /// Extracts an (irredundant-path) SOP cover: one cube per 1-path.
    pub fn to_cover(&self, r: BddRef) -> Cover {
        let mut cubes = Vec::new();
        let mut path: Vec<Literal> = Vec::new();
        self.paths(r, &mut path, &mut cubes);
        Cover::from_cubes(cubes)
    }

    fn paths(&self, r: BddRef, path: &mut Vec<Literal>, out: &mut Vec<Cube>) {
        match r {
            BddRef::FALSE => {}
            BddRef::TRUE => {
                out.push(Cube::from_literals(path.iter().copied()).expect("path is consistent"));
            }
            _ => {
                let n = self.nodes[r.0 as usize];
                path.push(Literal::neg(n.var as usize));
                self.paths(n.lo, path, out);
                path.pop();
                path.push(Literal::pos(n.var as usize));
                self.paths(n.hi, path, out);
                path.pop();
            }
        }
    }

    /// Existential quantification of a variable.
    pub fn exists(&mut self, r: BddRef, var: usize) -> BddRef {
        let (lo, hi) = self.restrict_pair(r, var);
        self.or(lo, hi)
    }

    /// Universal quantification of a variable.
    pub fn forall(&mut self, r: BddRef, var: usize) -> BddRef {
        let (lo, hi) = self.restrict_pair(r, var);
        self.and(lo, hi)
    }

    /// Restriction `f|_{var=value}`.
    pub fn restrict(&mut self, r: BddRef, var: usize, value: bool) -> BddRef {
        let (lo, hi) = self.restrict_pair(r, var);
        if value {
            hi
        } else {
            lo
        }
    }

    fn restrict_pair(&mut self, r: BddRef, var: usize) -> (BddRef, BddRef) {
        let v = var as u32;
        fn rec(
            bdd: &mut Bdd,
            r: BddRef,
            v: u32,
            value: bool,
            memo: &mut HashMap<BddRef, BddRef>,
        ) -> BddRef {
            if r.is_terminal() || bdd.var_of(r) > v {
                return r;
            }
            if let Some(&m) = memo.get(&r) {
                return m;
            }
            let n = bdd.nodes[r.0 as usize];
            let res = if n.var == v {
                if value {
                    n.hi
                } else {
                    n.lo
                }
            } else {
                let lo = rec(bdd, n.lo, v, value, memo);
                let hi = rec(bdd, n.hi, v, value, memo);
                bdd.mk(n.var, lo, hi)
            };
            memo.insert(r, res);
            res
        }
        let lo = rec(self, r, v, false, &mut HashMap::new());
        let hi = rec(self, r, v, true, &mut HashMap::new());
        (lo, hi)
    }

    /// Whether the function depends on `var`.
    pub fn depends_on(&mut self, r: BddRef, var: usize) -> bool {
        let (lo, hi) = self.restrict_pair(r, var);
        lo != hi
    }
}

/// Exact check that a cover agrees with an ON/OFF specification: covers
/// all ON minterms and avoids all OFF minterms (don't-cares free). The
/// exact counterpart of the debug assertions in [`crate::minimize`].
pub fn cover_matches_spec(cover: &Cover, nvars: usize, on: &[u64], off: &[u64]) -> bool {
    let mut bdd = Bdd::new();
    let f = bdd.from_cover(cover);
    let mut on_set = BddRef::FALSE;
    for &m in on {
        let c = bdd.from_cube(&Cube::minterm(m, nvars));
        on_set = bdd.or(on_set, c);
    }
    let mut off_set = BddRef::FALSE;
    for &m in off {
        let c = bdd.from_cube(&Cube::minterm(m, nvars));
        off_set = bdd.or(off_set, c);
    }
    let nf = bdd.not(f);
    let miss = bdd.and(on_set, nf);
    let clash = bdd.and(off_set, f);
    miss == BddRef::FALSE && clash == BddRef::FALSE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    #[test]
    fn terminals_and_literals() {
        let mut bdd = Bdd::new();
        let x = bdd.var(0);
        assert!(bdd.eval(x, 0b1));
        assert!(!bdd.eval(x, 0b0));
        let nx = bdd.not(x);
        assert!(bdd.eval(nx, 0b0));
        assert_eq!(bdd.not(nx), x, "double negation is canonical");
    }

    #[test]
    fn canonicity_of_equivalent_forms() {
        let mut bdd = Bdd::new();
        // a·b + a·c == a·(b + c)
        let a = bdd.var(0);
        let b = bdd.var(1);
        let c = bdd.var(2);
        let ab = bdd.and(a, b);
        let ac = bdd.and(a, c);
        let lhs = bdd.or(ab, ac);
        let bc = bdd.or(b, c);
        let rhs = bdd.and(a, bc);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_and_sat_count() {
        let mut bdd = Bdd::new();
        let a = bdd.var(0);
        let b = bdd.var(1);
        let x = bdd.xor(a, b);
        assert_eq!(bdd.sat_count(x, 2), 2);
        assert_eq!(bdd.sat_count(x, 3), 4); // free third variable doubles it
        assert_eq!(bdd.sat_count(BddRef::TRUE, 5), 32);
        assert_eq!(bdd.sat_count(BddRef::FALSE, 5), 0);
    }

    #[test]
    fn cover_roundtrip() {
        let mut bdd = Bdd::new();
        let cover =
            Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(2, false), (3, true)])]);
        let r = bdd.from_cover(&cover);
        for code in 0..16u64 {
            assert_eq!(bdd.eval(r, code), cover.eval(code), "code {code:04b}");
        }
        let back = bdd.to_cover(r);
        let mut bdd2 = Bdd::new();
        assert!(bdd2.covers_equal(&cover, &back));
    }

    #[test]
    fn implication_and_equality() {
        let mut bdd = Bdd::new();
        let small = Cover::from_cube(cube(&[(0, true), (1, true)]));
        let big = Cover::from_cube(cube(&[(0, true)]));
        assert!(bdd.cover_implies(&small, &big));
        assert!(!bdd.cover_implies(&big, &small));
        assert!(!bdd.covers_equal(&small, &big));
    }

    #[test]
    fn quantification() {
        let mut bdd = Bdd::new();
        // f = a·b: ∃a.f = b ; ∀a.f = 0 ; f|a=1 = b.
        let a = bdd.var(0);
        let b = bdd.var(1);
        let f = bdd.and(a, b);
        assert_eq!(bdd.exists(f, 0), b);
        assert_eq!(bdd.forall(f, 0), BddRef::FALSE);
        assert_eq!(bdd.restrict(f, 0, true), b);
        assert_eq!(bdd.restrict(f, 0, false), BddRef::FALSE);
        assert!(bdd.depends_on(f, 0));
        assert!(!bdd.depends_on(b, 0));
    }

    #[test]
    fn spec_matching() {
        // ON = {11}, OFF = {00} over 2 vars; x0 matches (1 on 11, 0 on 00).
        let f = Cover::from_cube(cube(&[(0, true)]));
        assert!(cover_matches_spec(&f, 2, &[0b11], &[0b00]));
        assert!(!cover_matches_spec(&f, 2, &[0b10], &[0b01]));
    }

    #[test]
    fn tautology_detection() {
        let mut bdd = Bdd::new();
        let taut = Cover::from_cubes([cube(&[(0, true)]), cube(&[(0, false)])]);
        let r = bdd.from_cover(&taut);
        assert!(bdd.is_tautology(r));
    }

    #[test]
    fn node_sharing_keeps_store_small() {
        let mut bdd = Bdd::new();
        // Build the same function many times: the store must not grow.
        let mut r = BddRef::FALSE;
        for _ in 0..10 {
            let c = bdd.from_cover(&Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(2, true), (3, true)]),
            ]));
            r = bdd.or(r, c);
        }
        let after_first = bdd.node_count();
        for _ in 0..10 {
            let c = bdd.from_cover(&Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(2, true), (3, true)]),
            ]));
            r = bdd.or(r, c);
        }
        assert_eq!(bdd.node_count(), after_first);
    }
}
