//! Two-level minimization against explicit ON/OFF minterm lists.
//!
//! State-graph synthesis problems enumerate the reachable state codes, so
//! the ON-set and OFF-set are given as explicit lists of minterm codes and
//! everything else (unreachable codes) is an implicit don't-care. This is
//! exactly the setting of espresso's `expand`/`irredundant`/`reduce` loop
//! with an OFF-set oracle, which we implement here in a compact form.

use crate::cover::Cover;
use crate::cube::{Cube, MAX_VARS};
use std::collections::HashSet;

/// A two-level minimization problem: explicit ON and OFF minterm lists over
/// `nvars` variables; every other code is a don't-care.
#[derive(Debug, Clone)]
pub struct MinimizeProblem {
    nvars: usize,
    on: Vec<u64>,
    off: Vec<u64>,
    /// Variable expansion order, precomputed once: variables whose removal
    /// is least likely to collide with the OFF-set first.
    var_order: Vec<usize>,
}

/// Error returned when the ON and OFF sets overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictingMintermError {
    /// A code present in both the ON and OFF sets.
    pub code: u64,
}

impl std::fmt::Display for ConflictingMintermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "minterm {:b} is in both the on-set and the off-set", self.code)
    }
}

impl std::error::Error for ConflictingMintermError {}

impl MinimizeProblem {
    /// Creates a problem; validates that ON and OFF are disjoint.
    ///
    /// # Errors
    /// Returns [`ConflictingMintermError`] if a code appears in both sets
    /// (in state-graph terms: a CSC conflict).
    pub fn new(nvars: usize, on: Vec<u64>, off: Vec<u64>) -> Result<Self, ConflictingMintermError> {
        assert!(nvars <= MAX_VARS);
        let off_set: HashSet<u64> = off.iter().copied().collect();
        if let Some(&code) = on.iter().find(|c| off_set.contains(c)) {
            return Err(ConflictingMintermError { code });
        }
        let mut on = on;
        let mut off = off;
        on.sort_unstable();
        on.dedup();
        off.sort_unstable();
        off.dedup();
        // Expansion order: for each variable, count how "split" the
        // OFF-set is on it — variables on which the OFF-set is one-sided
        // are cheap to drop and go first.
        let mut ones = vec![0usize; nvars];
        for &m in &off {
            for (v, count) in ones.iter_mut().enumerate() {
                *count += (m >> v & 1) as usize;
            }
        }
        let total = off.len();
        let mut var_order: Vec<usize> = (0..nvars).collect();
        var_order.sort_by_key(|&v| ones[v].min(total - ones[v]));
        Ok(MinimizeProblem { nvars, on, off, var_order })
    }

    /// The ON-set codes.
    pub fn on(&self) -> &[u64] {
        &self.on
    }

    /// The OFF-set codes.
    pub fn off(&self) -> &[u64] {
        &self.off
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// Minimizes and returns an SOP cover that is 1 on all ON codes and 0 on
    /// all OFF codes (don't-cares used freely).
    pub fn minimize(&self) -> Cover {
        if self.on.is_empty() {
            return Cover::zero();
        }
        if self.off.is_empty() {
            return Cover::one();
        }
        let expanded = self.expand_all();
        let mut cover = self.irredundant(&expanded);
        // One reduce/re-expand pass often removes an extra literal or cube.
        for _ in 0..2 {
            let reduced = self.reduce(&cover);
            let re_expanded: Vec<Cube> = reduced.iter().map(|c| self.expand_cube(*c)).collect();
            let candidate = self.irredundant(&re_expanded);
            if cost(&candidate) < cost(&cover) {
                cover = candidate;
            } else {
                break;
            }
        }
        debug_assert!(cover.covers_all(&self.on));
        debug_assert!(cover.avoids_all(&self.off));
        cover
    }

    /// Expands each ON minterm into a prime-like cube against the OFF list.
    fn expand_all(&self) -> Vec<Cube> {
        let mut seen = HashSet::new();
        let mut cubes = Vec::new();
        for &m in &self.on {
            let cube = self.expand_cube(Cube::minterm(m, self.nvars));
            if seen.insert(cube) {
                cubes.push(cube);
            }
        }
        cubes
    }

    /// Greedily removes literals from `cube` while it stays disjoint from
    /// the OFF-set, trying variables in the problem's precomputed order.
    fn expand_cube(&self, cube: Cube) -> Cube {
        let mut cube = cube;
        let mut changed = true;
        while changed {
            changed = false;
            for &v in &self.var_order {
                if cube.phase_of(v).is_none() {
                    continue;
                }
                let widened = cube.without_var(v);
                if !self.off.iter().any(|&m| widened.eval(m)) {
                    cube = widened;
                    changed = true;
                }
            }
        }
        cube
    }

    /// Minimum-ish cover of the ON minterms by the candidate cubes:
    /// essential candidates first (sole cover of some minterm), then
    /// greedy set-cover on the rest.
    fn irredundant(&self, candidates: &[Cube]) -> Cover {
        let mut uncovered: HashSet<u64> = self.on.iter().copied().collect();
        let mut chosen: Vec<Cube> = Vec::new();

        // Essential pass: a candidate covering a minterm nobody else
        // covers must be in every solution.
        for &m in &self.on {
            let mut covering = candidates.iter().filter(|c| c.eval(m));
            if let (Some(&only), None) = (covering.next(), covering.next()) {
                if !chosen.contains(&only) {
                    chosen.push(only);
                }
            }
        }
        for c in &chosen {
            uncovered.retain(|&m| !c.eval(m));
        }

        while !uncovered.is_empty() {
            let mut best: Option<(usize, usize, Cube)> = None;
            for &c in candidates {
                let gain = uncovered.iter().filter(|&&m| c.eval(m)).count();
                if gain == 0 {
                    continue;
                }
                let key = (gain, usize::MAX - c.literal_count());
                match &best {
                    Some((bg, bl, _)) if (*bg, *bl) >= key => {}
                    _ => best = Some((key.0, key.1, c)),
                }
            }
            // When no candidate covers a remaining minterm (possible after
            // an aggressive reduce pass), expand that minterm directly.
            let cube = match best {
                Some((_, _, c)) => c,
                None => {
                    let &m = uncovered.iter().next().expect("loop guard");
                    self.expand_cube(Cube::minterm(m, self.nvars))
                }
            };
            uncovered.retain(|&m| !cube.eval(m));
            chosen.push(cube);
        }
        Cover::from_cubes(chosen)
    }

    /// Reduces each cube of `cover` to the smallest cube still covering the
    /// ON minterms only it covers (classic `reduce`).
    fn reduce(&self, cover: &Cover) -> Vec<Cube> {
        let cubes = cover.cubes();
        let mut reduced = Vec::with_capacity(cubes.len());
        for (i, c) in cubes.iter().enumerate() {
            let exclusive: Vec<u64> = self
                .on
                .iter()
                .copied()
                .filter(|&m| {
                    c.eval(m) && !cubes.iter().enumerate().any(|(j, d)| j != i && d.eval(m))
                })
                .collect();
            if exclusive.is_empty() {
                // Redundant cube; keep as-is (irredundant pass will drop it).
                reduced.push(*c);
                continue;
            }
            // Smallest cube containing the exclusive minterms: the supercube.
            let mut pos = u64::MAX;
            let mut neg = u64::MAX;
            for &m in &exclusive {
                pos &= m;
                neg &= !m;
            }
            let mask = if self.nvars == MAX_VARS { u64::MAX } else { (1u64 << self.nvars) - 1 };
            let cube = Cube::from_masks(pos & mask, neg & mask).expect("supercube is consistent");
            reduced.push(cube);
        }
        reduced
    }

    /// Minimized complement: 1 on OFF codes, 0 on ON codes.
    pub fn minimize_complement(&self) -> Cover {
        MinimizeProblem::new(self.nvars, self.off.clone(), self.on.clone())
            .expect("swapped sets stay disjoint")
            .minimize()
    }
}

fn cost(cover: &Cover) -> (usize, usize) {
    (cover.cube_count(), cover.literal_count())
}

/// Gate complexity in the paper's §4 model: number of literals needed to
/// implement the function as a sum-of-products gate, *either complemented
/// or not* (e.g. a 2-input XOR counts 4 literals; `ab+ac+db+dc` counts 4 via
/// its complement-free factorization — we approximate that model with
/// `min(lits(F), lits(F̄))`).
pub fn gate_complexity(problem: &MinimizeProblem) -> usize {
    let f = problem.minimize();
    let g = problem.minimize_complement();
    f.literal_count().min(g.literal_count())
}

/// Convenience: minimize an ON/OFF split given as code lists.
///
/// # Errors
/// Returns [`ConflictingMintermError`] when the sets overlap.
pub fn minimize_onoff(
    nvars: usize,
    on: &[u64],
    off: &[u64],
) -> Result<Cover, ConflictingMintermError> {
    Ok(MinimizeProblem::new(nvars, on.to_vec(), off.to_vec())?.minimize())
}

/// Builds the cover that is exactly the characteristic function of `on`
/// against `off`, *without* expansion beyond what containment allows — i.e.
/// just the ON minterms merged by the minimizer. Useful as a safe fallback.
pub fn exact_characteristic(nvars: usize, on: &[u64]) -> Cover {
    Cover::from_cubes(on.iter().map(|&m| Cube::minterm(m, nvars)))
}

/// Returns `true` if the cover evaluates to 1 somewhere on the given codes.
pub fn intersects_codes(cover: &Cover, codes: &[u64]) -> bool {
    codes.iter().any(|&m| cover.eval(m))
}

/// Restricts a cover's truth table to an explicit universe, returning the
/// codes where it holds.
pub fn on_codes(cover: &Cover, universe: &[u64]) -> Vec<u64> {
    universe.iter().copied().filter(|&m| cover.eval(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Literal;

    #[test]
    fn rejects_conflicts() {
        let err = MinimizeProblem::new(2, vec![1], vec![1, 2]).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn constant_cases() {
        let p = MinimizeProblem::new(2, vec![], vec![0]).unwrap();
        assert!(p.minimize().is_zero());
        let p = MinimizeProblem::new(2, vec![0, 3], vec![]).unwrap();
        assert!(p.minimize().is_one());
    }

    #[test]
    fn single_literal_emerges() {
        // ON = {codes with bit0 = 1}, OFF = rest over 3 vars.
        let on: Vec<u64> = (0..8).filter(|c| c & 1 == 1).collect();
        let off: Vec<u64> = (0..8).filter(|c| c & 1 == 0).collect();
        let f = minimize_onoff(3, &on, &off).unwrap();
        assert_eq!(f.literal_count(), 1);
        assert_eq!(f.cubes()[0], Cube::from_literals([Literal::pos(0)]).unwrap());
    }

    #[test]
    fn xor_needs_four_literals() {
        // XOR over 2 vars: ON = {01,10}, OFF = {00,11}.
        let p = MinimizeProblem::new(2, vec![0b01, 0b10], vec![0b00, 0b11]).unwrap();
        let f = p.minimize();
        assert_eq!(f.literal_count(), 4);
        assert_eq!(gate_complexity(&p), 4);
    }

    #[test]
    fn dont_cares_are_used() {
        // 3 vars; ON = {111}, OFF = {000}; everything else DC => a single
        // literal suffices.
        let f = minimize_onoff(3, &[0b111], &[0b000]).unwrap();
        assert_eq!(f.literal_count(), 1);
    }

    #[test]
    fn correctness_on_random_partitions() {
        // Deterministic pseudo-random split of a 5-var space.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let mut on = Vec::new();
            let mut off = Vec::new();
            for code in 0..32u64 {
                match next() % 3 {
                    0 => on.push(code),
                    1 => off.push(code),
                    _ => {}
                }
            }
            let p = MinimizeProblem::new(5, on.clone(), off.clone()).unwrap();
            let f = p.minimize();
            assert!(f.covers_all(&on), "on-set must be covered");
            assert!(f.avoids_all(&off), "off-set must be avoided");
            let g = p.minimize_complement();
            assert!(g.covers_all(&off));
            assert!(g.avoids_all(&on));
        }
    }

    #[test]
    fn complement_cheaper_counts() {
        // f = majority-ish function where complement is simpler: OFF = {000}.
        let on: Vec<u64> = (1..8).collect();
        let p = MinimizeProblem::new(3, on, vec![0]).unwrap();
        // f = a + b + c (3 literals), f' = a'b'c' (3 literals).
        assert_eq!(gate_complexity(&p), 3);
    }

    #[test]
    fn essential_primes_are_kept() {
        // f over 4 vars with two essential primes: the classic two-lobe
        // function ON = {x3'x2'x1'} ∪ {x3 x2 x1} plus a bridging DC.
        // ON minterms 0000,0001 need cube x3'x2'x1'; 1110,1111 need
        // x3x2x1; nothing else covers them.
        let on = vec![0b0000, 0b0001, 0b1110, 0b1111];
        let off = vec![0b0100, 0b0010, 0b1011, 0b1101, 0b0110, 0b1001];
        let p = MinimizeProblem::new(4, on.clone(), off.clone()).unwrap();
        let f = p.minimize();
        assert!(f.covers_all(&on));
        assert!(f.avoids_all(&off));
        assert_eq!(f.cube_count(), 2, "two essential primes suffice: {f:?}");
    }

    #[test]
    fn exact_characteristic_covers() {
        let on = [0b101, 0b100];
        let f = exact_characteristic(3, &on);
        assert!(f.covers_all(&on));
        assert!(!f.eval(0b111));
    }
}
