//! Single-cube (product term) representation over up to 64 boolean variables.

use std::fmt;

/// Maximum number of variables supported by the cube engine.
pub const MAX_VARS: usize = 64;

/// A literal: a variable together with a phase.
///
/// `phase == true` denotes the positive literal `x`, `phase == false` the
/// complemented literal `x̄`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// Variable index (must be `< MAX_VARS`).
    pub var: usize,
    /// `true` for `x`, `false` for `x̄`.
    pub phase: bool,
}

impl Literal {
    /// Creates a literal over variable `var` with the given phase.
    ///
    /// # Panics
    /// Panics if `var >= MAX_VARS`.
    pub fn new(var: usize, phase: bool) -> Self {
        assert!(var < MAX_VARS, "variable index {var} out of range");
        Literal { var, phase }
    }

    /// Positive literal `x_var`.
    pub fn pos(var: usize) -> Self {
        Literal::new(var, true)
    }

    /// Negative literal `x̄_var`.
    pub fn neg(var: usize) -> Self {
        Literal::new(var, false)
    }

    /// The literal with the same variable and opposite phase.
    pub fn complement(self) -> Self {
        Literal { var: self.var, phase: !self.phase }
    }

    /// A dense index usable for ordering literals: `2*var + phase`.
    pub fn index(self) -> usize {
        self.var * 2 + usize::from(self.phase)
    }

    /// Inverse of [`Literal::index`].
    pub fn from_index(index: usize) -> Self {
        Literal::new(index / 2, index % 2 == 1)
    }

    /// Evaluates the literal on a minterm code (bit `var` of `code`).
    pub fn eval(self, code: u64) -> bool {
        ((code >> self.var) & 1 == 1) == self.phase
    }
}

/// A product term (conjunction of literals) over at most [`MAX_VARS`]
/// variables, stored as a pair of bit masks.
///
/// Bit `i` of `pos` requires variable `i` to be 1; bit `i` of `neg`
/// requires it to be 0. A variable mentioned in neither mask is a
/// don't-care. The invariant `pos & neg == 0` always holds: a
/// contradictory cube (empty set of minterms) is not representable and is
/// instead modelled by dropping the cube from a [`crate::Cover`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    pos: u64,
    neg: u64,
}

impl Cube {
    /// The universal cube (no literals — covers every minterm).
    pub fn top() -> Self {
        Cube { pos: 0, neg: 0 }
    }

    /// Builds a cube from raw positive/negative masks.
    ///
    /// Returns `None` if the masks overlap (contradictory cube).
    pub fn from_masks(pos: u64, neg: u64) -> Option<Self> {
        if pos & neg != 0 {
            None
        } else {
            Some(Cube { pos, neg })
        }
    }

    /// Builds a cube from an iterator of literals.
    ///
    /// Returns `None` if two literals contradict each other.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(literals: I) -> Option<Self> {
        let mut cube = Cube::top();
        for lit in literals {
            cube = cube.with_literal(lit)?;
        }
        Some(cube)
    }

    /// The full minterm cube for `code` restricted to `nvars` variables.
    pub fn minterm(code: u64, nvars: usize) -> Self {
        assert!(nvars <= MAX_VARS);
        let mask = if nvars == MAX_VARS { u64::MAX } else { (1u64 << nvars) - 1 };
        Cube { pos: code & mask, neg: !code & mask }
    }

    /// Positive-literal mask.
    pub fn pos_mask(&self) -> u64 {
        self.pos
    }

    /// Negative-literal mask.
    pub fn neg_mask(&self) -> u64 {
        self.neg
    }

    /// Adds a literal; `None` on contradiction.
    #[must_use]
    pub fn with_literal(self, lit: Literal) -> Option<Self> {
        let bit = 1u64 << lit.var;
        let (pos, neg) =
            if lit.phase { (self.pos | bit, self.neg) } else { (self.pos, self.neg | bit) };
        Cube::from_masks(pos, neg)
    }

    /// Removes any literal on variable `var`.
    #[must_use]
    pub fn without_var(self, var: usize) -> Self {
        let bit = !(1u64 << var);
        Cube { pos: self.pos & bit, neg: self.neg & bit }
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> usize {
        (self.pos.count_ones() + self.neg.count_ones()) as usize
    }

    /// Whether the cube has no literals.
    pub fn is_top(&self) -> bool {
        self.pos == 0 && self.neg == 0
    }

    /// Whether the cube constrains variable `var`, and with which phase.
    pub fn phase_of(&self, var: usize) -> Option<bool> {
        let bit = 1u64 << var;
        if self.pos & bit != 0 {
            Some(true)
        } else if self.neg & bit != 0 {
            Some(false)
        } else {
            None
        }
    }

    /// Iterator over the literals of the cube, in increasing variable order.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        let pos = self.pos;
        let neg = self.neg;
        (0..MAX_VARS).filter_map(move |v| {
            let bit = 1u64 << v;
            if pos & bit != 0 {
                Some(Literal::pos(v))
            } else if neg & bit != 0 {
                Some(Literal::neg(v))
            } else {
                None
            }
        })
    }

    /// Evaluates the cube on a minterm code.
    pub fn eval(&self, code: u64) -> bool {
        (code & self.pos) == self.pos && (code & self.neg) == 0
    }

    /// Set-containment: does `self` cover every minterm of `other`?
    ///
    /// Holds iff the literals of `self` are a subset of the literals of
    /// `other`.
    pub fn contains(&self, other: &Cube) -> bool {
        (self.pos & other.pos) == self.pos && (self.neg & other.neg) == self.neg
    }

    /// Intersection of two cubes; `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        Cube::from_masks(self.pos | other.pos, self.neg | other.neg)
    }

    /// Whether the two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        self.intersect(other).is_some()
    }

    /// Removes from `self` all literals that appear in `other`
    /// (cube "division" by a cube known to be contained in the literal set).
    ///
    /// Only meaningful when `other.contains_literals_of(self)`-style checks
    /// have been made by the caller; this simply clears the shared mask bits.
    #[must_use]
    pub fn remove_literals_of(&self, other: &Cube) -> Cube {
        Cube { pos: self.pos & !other.pos, neg: self.neg & !other.neg }
    }

    /// Whether all literals of `other` occur in `self`.
    pub fn has_all_literals_of(&self, other: &Cube) -> bool {
        (other.pos & self.pos) == other.pos && (other.neg & self.neg) == other.neg
    }

    /// The largest cube containing both (the common literals).
    #[must_use]
    pub fn common_literals(&self, other: &Cube) -> Cube {
        Cube { pos: self.pos & other.pos, neg: self.neg & other.neg }
    }

    /// Distance: number of variables on which the cubes require opposite
    /// phases. Distance 0 means the cubes intersect.
    pub fn distance(&self, other: &Cube) -> usize {
        ((self.pos & other.neg) | (self.neg & other.pos)).count_ones() as usize
    }

    /// Renders the cube with variable names supplied by `name`.
    pub fn display_with<'a, F>(&'a self, name: F) -> CubeDisplay<'a, F>
    where
        F: Fn(usize) -> String,
    {
        CubeDisplay { cube: self, name }
    }
}

/// Helper returned by [`Cube::display_with`].
pub struct CubeDisplay<'a, F> {
    cube: &'a Cube,
    name: F,
}

impl<F: Fn(usize) -> String> fmt::Display for CubeDisplay<'_, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cube.is_top() {
            return write!(f, "1");
        }
        let mut first = true;
        for lit in self.cube.literals() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if lit.phase {
                write!(f, "{}", (self.name)(lit.var))?;
            } else {
                write!(f, "{}'", (self.name)(lit.var))?;
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({})", self.display_with(|v| format!("x{v}")))
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| format!("x{v}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        for var in [0, 5, 63] {
            for phase in [false, true] {
                let lit = Literal::new(var, phase);
                assert_eq!(Literal::from_index(lit.index()), lit);
                assert_eq!(lit.complement().complement(), lit);
            }
        }
    }

    #[test]
    fn literal_eval() {
        assert!(Literal::pos(2).eval(0b100));
        assert!(!Literal::pos(2).eval(0b011));
        assert!(Literal::neg(0).eval(0b100));
        assert!(!Literal::neg(2).eval(0b100));
    }

    #[test]
    fn cube_from_literals_detects_contradiction() {
        assert!(Cube::from_literals([Literal::pos(1), Literal::neg(1)]).is_none());
        let c = Cube::from_literals([Literal::pos(1), Literal::neg(2)]).unwrap();
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    fn cube_eval_and_minterm() {
        let c = Cube::minterm(0b101, 3);
        assert!(c.eval(0b101));
        assert!(!c.eval(0b100));
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn cube_containment() {
        let ab = Cube::from_literals([Literal::pos(0), Literal::pos(1)]).unwrap();
        let a = Cube::from_literals([Literal::pos(0)]).unwrap();
        assert!(a.contains(&ab));
        assert!(!ab.contains(&a));
        assert!(Cube::top().contains(&ab));
    }

    #[test]
    fn cube_intersection_and_distance() {
        let a = Cube::from_literals([Literal::pos(0)]).unwrap();
        let na = Cube::from_literals([Literal::neg(0)]).unwrap();
        assert!(a.intersect(&na).is_none());
        assert_eq!(a.distance(&na), 1);
        let b = Cube::from_literals([Literal::pos(1)]).unwrap();
        let ab = a.intersect(&b).unwrap();
        assert_eq!(ab.literal_count(), 2);
        assert_eq!(a.distance(&b), 0);
    }

    #[test]
    fn remove_and_common_literals() {
        let abc = Cube::from_literals([Literal::pos(0), Literal::pos(1), Literal::neg(2)]).unwrap();
        let ab = Cube::from_literals([Literal::pos(0), Literal::pos(1)]).unwrap();
        assert!(abc.has_all_literals_of(&ab));
        let rest = abc.remove_literals_of(&ab);
        assert_eq!(rest, Cube::from_literals([Literal::neg(2)]).unwrap());
        assert_eq!(abc.common_literals(&ab), ab);
    }

    #[test]
    fn phase_of_reports_constraints() {
        let c = Cube::from_literals([Literal::pos(3), Literal::neg(5)]).unwrap();
        assert_eq!(c.phase_of(3), Some(true));
        assert_eq!(c.phase_of(5), Some(false));
        assert_eq!(c.phase_of(0), None);
    }

    #[test]
    fn display_names() {
        let c = Cube::from_literals([Literal::pos(0), Literal::neg(1)]).unwrap();
        let names = ["a", "b"];
        let s = format!("{}", c.display_with(|v| names[v].to_string()));
        assert_eq!(s, "a b'");
        assert_eq!(format!("{}", Cube::top()), "1");
    }
}
