//! Kernel / co-kernel extraction (Brayton–McMullen algebraic kernels).

use crate::cover::Cover;
use crate::cube::{Cube, Literal, MAX_VARS};
use crate::divide::divide_by_cube;

/// A kernel of a cover together with its co-kernel cube.
///
/// `kernel` is a cube-free quotient of the original cover by `cokernel`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// The cube-free quotient.
    pub kernel: Cover,
    /// The cube by which the original cover was divided.
    pub cokernel: Cube,
}

/// Computes all kernels (level-0 and higher) of `cover`, including the
/// cover itself when it is cube-free.
///
/// The classic recursive `kernel1` algorithm: for each literal appearing in
/// at least two cubes, divide, strip the common cube, and recurse with an
/// index guard to avoid duplicates.
pub fn kernels(cover: &Cover) -> Vec<Kernel> {
    let mut out = Vec::new();
    if cover.cube_count() < 2 {
        return out;
    }
    let base = {
        let cc = cover.common_cube();
        if cc.is_top() {
            cover.clone()
        } else {
            divide_by_cube(cover, &cc).quotient
        }
    };
    if base.is_cube_free() {
        out.push(Kernel { kernel: base.clone(), cokernel: cover.common_cube() });
    }
    kernel_rec(&base, 0, &cover.common_cube(), &mut out);
    dedupe(&mut out);
    out
}

fn kernel_rec(cover: &Cover, min_index: usize, cokernel_so_far: &Cube, out: &mut Vec<Kernel>) {
    for idx in min_index..(MAX_VARS * 2) {
        let lit = Literal::from_index(idx);
        if cover.literal_occurrences(lit) < 2 {
            continue;
        }
        let lit_cube = Cube::from_literals([lit]).expect("literal cube");
        let quotient = divide_by_cube(cover, &lit_cube).quotient;
        if quotient.cube_count() < 2 {
            continue;
        }
        // Make cube-free by stripping the largest common cube.
        let common = quotient.common_cube();
        let cube_free = if common.is_top() {
            quotient.clone()
        } else {
            divide_by_cube(&quotient, &common).quotient
        };
        // Skip if the common cube contains a literal with smaller index:
        // this kernel was (or will be) produced from that branch.
        let full_co = lit_cube
            .intersect(&common)
            .and_then(|c| c.intersect(cokernel_so_far))
            .expect("co-kernel literals are disjoint from quotient support");
        let smaller_seen = common
            .literals()
            .chain(std::iter::once(lit))
            .any(|l| l.index() < idx && common.phase_of(l.var) == Some(l.phase));
        if !smaller_seen && cube_free.cube_count() >= 2 {
            out.push(Kernel { kernel: cube_free.clone(), cokernel: full_co });
            kernel_rec(&cube_free, idx + 1, &full_co, out);
        }
    }
}

fn dedupe(kernels: &mut Vec<Kernel>) {
    let mut seen: Vec<Cover> = Vec::new();
    kernels.retain(|k| {
        if seen.contains(&k.kernel) {
            false
        } else {
            seen.push(k.kernel.clone());
            true
        }
    });
}

/// Level-0 kernels only (kernels that have no kernels other than
/// themselves). Handy for quick factoring.
pub fn level0_kernels(cover: &Cover) -> Vec<Kernel> {
    kernels(cover)
        .into_iter()
        .filter(|k| kernels(&k.kernel).iter().all(|inner| inner.kernel == k.kernel))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    // a=0 b=1 c=2 d=3 e=4 f=5 g=6
    #[test]
    fn simple_kernel() {
        // f = ab + ac: kernel b + c with cokernel a.
        let f = Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, true)])]);
        let ks = kernels(&f);
        assert!(ks.iter().any(|k| {
            k.kernel == Cover::from_cubes([cube(&[(1, true)]), cube(&[(2, true)])])
                && k.cokernel == cube(&[(0, true)])
        }));
    }

    #[test]
    fn textbook_kernels() {
        // f = adf + aef + bdf + bef + cdf + cef + g
        //   = (a+b+c)(d+e)f + g.
        let mk = |x: usize, y: usize| cube(&[(x, true), (y, true), (5, true)]);
        let f = Cover::from_cubes([
            mk(0, 3),
            mk(0, 4),
            mk(1, 3),
            mk(1, 4),
            mk(2, 3),
            mk(2, 4),
            cube(&[(6, true)]),
        ]);
        let ks = kernels(&f);
        let abc = Cover::from_cubes([cube(&[(0, true)]), cube(&[(1, true)]), cube(&[(2, true)])]);
        let de = Cover::from_cubes([cube(&[(3, true)]), cube(&[(4, true)])]);
        assert!(ks.iter().any(|k| k.kernel == abc), "a+b+c should be a kernel");
        assert!(ks.iter().any(|k| k.kernel == de), "d+e should be a kernel");
        // The whole function is cube-free (because of the lone g term).
        assert!(ks.iter().any(|k| k.kernel == f));
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let f = Cover::from_cubes([cube(&[(0, true), (1, true)])]);
        assert!(kernels(&f).is_empty());
    }

    #[test]
    fn kernels_are_cube_free() {
        let f = Cover::from_cubes([
            cube(&[(0, true), (1, true), (2, true)]),
            cube(&[(0, true), (1, true), (3, true)]),
            cube(&[(0, true), (4, true)]),
        ]);
        for k in kernels(&f) {
            assert!(
                k.kernel.is_cube_free() || k.kernel.cube_count() < 2,
                "kernel {:?} is not cube-free",
                k.kernel
            );
        }
    }

    #[test]
    fn negative_literal_kernels() {
        // f = a'b + a'c => kernel b+c, cokernel a'.
        let f = Cover::from_cubes([cube(&[(0, false), (1, true)]), cube(&[(0, false), (2, true)])]);
        let ks = kernels(&f);
        assert!(ks.iter().any(|k| k.cokernel == cube(&[(0, false)])));
    }

    #[test]
    fn level0_subset() {
        let mk = |x: usize, y: usize| cube(&[(x, true), (y, true), (5, true)]);
        let f = Cover::from_cubes([mk(0, 3), mk(0, 4), mk(1, 3), mk(1, 4)]);
        let l0 = level0_kernels(&f);
        assert!(!l0.is_empty());
        for k in l0 {
            assert!(kernels(&k.kernel).iter().all(|inner| inner.kernel == k.kernel));
        }
    }
}
