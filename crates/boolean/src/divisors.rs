//! Candidate-divisor generation for logic decomposition (paper §3.1).
//!
//! For a cover `c(a*)` the paper considers:
//! * kernels and co-kernels of `c(a*)`;
//! * OR-decompositions: any subset of the terms of a poly-term cover;
//! * AND-decompositions: any subset of the literals of a single cube;
//! * recursive decomposition of the candidates (sub-kernels,
//!   AND/OR-decompositions of kernels);
//!
//! heuristically pruned to avoid an explosion of candidates.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::kernels::kernels;

/// Controls how aggressively divisor candidates are generated.
#[derive(Debug, Clone)]
pub struct DivisorConfig {
    /// Maximum number of candidates returned.
    pub max_candidates: usize,
    /// Maximum subset size enumerated for OR-decompositions.
    pub max_or_subset: usize,
    /// Maximum subset size enumerated for AND-decompositions of a cube.
    pub max_and_subset: usize,
    /// Recursion depth for decomposing candidates themselves.
    pub recursion_depth: usize,
}

impl Default for DivisorConfig {
    fn default() -> Self {
        DivisorConfig {
            max_candidates: 64,
            max_or_subset: 3,
            max_and_subset: 3,
            recursion_depth: 1,
        }
    }
}

/// Generates candidate divisors for `cover`, ordered so that "larger"
/// divisors (more potential savings) come first.
///
/// Trivial single-literal divisors are excluded, as in the paper's
/// Example 2.
pub fn generate_divisors(cover: &Cover, config: &DivisorConfig) -> Vec<Cover> {
    let mut out: Vec<Cover> = Vec::new();
    let mut push = |cand: Cover, out: &mut Vec<Cover>| {
        if is_trivial(&cand, cover) {
            return;
        }
        if !out.contains(&cand) {
            out.push(cand);
        }
    };

    collect_level(cover, config, config.recursion_depth, &mut push, &mut out);

    // Order: multi-cube divisors by (cube_count, literal_count) descending
    // potential, then single-cube AND divisors by literal count descending.
    out.sort_by_key(|d| {
        let lits = d.literal_count();
        let cubes = d.cube_count();
        (std::cmp::Reverse(cubes), std::cmp::Reverse(lits))
    });
    out.truncate(config.max_candidates);
    out
}

fn collect_level(
    cover: &Cover,
    config: &DivisorConfig,
    depth: usize,
    push: &mut impl FnMut(Cover, &mut Vec<Cover>),
    out: &mut Vec<Cover>,
) {
    // Kernels and co-kernels.
    let ks = kernels(cover);
    for k in &ks {
        push(k.kernel.clone(), out);
        if k.cokernel.literal_count() >= 2 {
            push(Cover::from_cube(k.cokernel), out);
        }
    }

    // OR-decompositions: subsets of terms (size 2..=max, plus complements of
    // the enumerated subsets so that "all but these" splits are available).
    let cubes = cover.cubes();
    if cubes.len() >= 2 {
        let n = cubes.len();
        for size in 2..=config.max_or_subset.min(n.saturating_sub(1)) {
            for subset in subsets(n, size) {
                let chosen: Vec<Cube> = subset.iter().map(|&i| cubes[i]).collect();
                push(Cover::from_cubes(chosen), out);
                if n > size + 1 {
                    let rest: Vec<Cube> =
                        (0..n).filter(|i| !subset.contains(i)).map(|i| cubes[i]).collect();
                    if rest.len() >= 2 {
                        push(Cover::from_cubes(rest), out);
                    }
                }
                if out.len() > config.max_candidates * 4 {
                    break;
                }
            }
        }
        // Individual cubes of a poly-term cover are OR-divisors too (single
        // terms with >= 2 literals).
        for c in cubes {
            if c.literal_count() >= 2 {
                push(Cover::from_cube(*c), out);
            }
        }
    }

    // AND-decompositions: subsets of literals of each cube.
    for c in cubes {
        let lits: Vec<_> = c.literals().collect();
        if lits.len() < 3 && cubes.len() == 1 {
            // A 2-literal lone cube has only trivial sub-divisors.
            continue;
        }
        let n = lits.len();
        for size in 2..=config.max_and_subset.min(n.saturating_sub(1)) {
            for subset in subsets(n, size) {
                let sub = Cube::from_literals(subset.iter().map(|&i| lits[i]))
                    .expect("subset of a consistent cube is consistent");
                push(Cover::from_cube(sub), out);
            }
            if out.len() > config.max_candidates * 4 {
                break;
            }
        }
        // Also the (n-1)-literal sub-cubes, which drop exactly one literal.
        if n >= 3 {
            for skip in 0..n {
                let sub = Cube::from_literals(
                    lits.iter().enumerate().filter(|&(i, _)| i != skip).map(|(_, &l)| l),
                )
                .expect("sub-cube consistent");
                push(Cover::from_cube(sub), out);
            }
        }
    }

    // Recursive decomposition of kernel candidates.
    if depth > 0 {
        for k in ks {
            if k.kernel != *cover {
                collect_level(&k.kernel, config, depth - 1, push, out);
            }
        }
    }
}

fn is_trivial(candidate: &Cover, original: &Cover) -> bool {
    candidate.is_zero()
        || candidate.is_one()
        || candidate.literal_count() < 2
        || candidate == original
}

/// Enumerates all `size`-element subsets of `0..n` (small sizes only).
fn subsets(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec(
        n: usize,
        size: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(n, size, i + 1, current, out);
            current.pop();
        }
    }
    rec(n, size, 0, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Literal;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::from_literals(lits.iter().map(|&(v, p)| Literal::new(v, p))).unwrap()
    }

    // a=0 b=1 c=2 d=3 e=4 f=5
    #[test]
    fn paper_example_2() {
        // c(z*) = ab + ac + def.
        let cover = Cover::from_cubes([
            cube(&[(0, true), (1, true)]),
            cube(&[(0, true), (2, true)]),
            cube(&[(3, true), (4, true), (5, true)]),
        ]);
        let divisors = generate_divisors(&cover, &DivisorConfig::default());
        let want = [
            // kernel b + c
            Cover::from_cubes([cube(&[(1, true)]), cube(&[(2, true)])]),
            // OR-decompositions
            Cover::from_cube(cube(&[(0, true), (1, true)])),
            Cover::from_cube(cube(&[(0, true), (2, true)])),
            Cover::from_cube(cube(&[(3, true), (4, true), (5, true)])),
            Cover::from_cubes([cube(&[(0, true), (1, true)]), cube(&[(0, true), (2, true)])]),
            Cover::from_cubes([
                cube(&[(0, true), (1, true)]),
                cube(&[(3, true), (4, true), (5, true)]),
            ]),
            Cover::from_cubes([
                cube(&[(0, true), (2, true)]),
                cube(&[(3, true), (4, true), (5, true)]),
            ]),
            // AND-decompositions of def
            Cover::from_cube(cube(&[(3, true), (4, true)])),
            Cover::from_cube(cube(&[(3, true), (5, true)])),
            Cover::from_cube(cube(&[(4, true), (5, true)])),
        ];
        for w in &want {
            assert!(divisors.contains(w), "missing divisor {w:?}");
        }
        // Trivial single-literal divisors are not generated.
        assert!(!divisors.contains(&Cover::literal(Literal::pos(0))));
    }

    #[test]
    fn single_cube_and_decomposition() {
        // hazard.g style: a single 3-literal cube a'cd decomposes three ways.
        let cover = Cover::from_cube(cube(&[(0, false), (2, true), (3, true)]));
        let divisors = generate_divisors(&cover, &DivisorConfig::default());
        assert!(divisors.contains(&Cover::from_cube(cube(&[(0, false), (2, true)]))));
        assert!(divisors.contains(&Cover::from_cube(cube(&[(0, false), (3, true)]))));
        assert!(divisors.contains(&Cover::from_cube(cube(&[(2, true), (3, true)]))));
        assert_eq!(divisors.len(), 3);
    }

    #[test]
    fn respects_max_candidates() {
        let cover = Cover::from_cubes(
            (0..8).map(|i| cube(&[(i, true), ((i + 1) % 8, true), ((i + 2) % 8, true)])),
        );
        let config = DivisorConfig { max_candidates: 10, ..DivisorConfig::default() };
        let divisors = generate_divisors(&cover, &config);
        assert!(divisors.len() <= 10);
    }

    #[test]
    fn subsets_enumeration() {
        assert_eq!(subsets(3, 2), vec![vec![0, 1], vec![0, 2], vec![1, 2]]);
        assert_eq!(subsets(2, 2), vec![vec![0, 1]]);
        assert!(subsets(2, 3).is_empty());
    }
}
