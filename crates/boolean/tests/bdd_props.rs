//! Property tests for the BDD manager against a brute-force truth-table
//! oracle: every connective, quantifier and the symbolic-reachability
//! primitives (`and_exists`, `rename`, `sat_count_set`) are checked
//! pointwise over the full 2^N input space of randomly generated
//! functions (N = 8 ≤ 10, so the oracle stays exhaustive).

use proptest::prelude::*;
use simap_boolean::{Bdd, BddRef, Cover, Cube, Literal, VarSet};

const N: usize = 8;
const SIZE: usize = 1 << N;

/// An exhaustive truth table over `N` variables — the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Table(Vec<bool>);

impl Table {
    fn of_cover(cover: &Cover) -> Table {
        Table((0..SIZE as u64).map(|code| cover.eval(code)).collect())
    }

    fn zip(&self, other: &Table, f: impl Fn(bool, bool) -> bool) -> Table {
        Table(self.0.iter().zip(&other.0).map(|(&a, &b)| f(a, b)).collect())
    }

    fn not(&self) -> Table {
        Table(self.0.iter().map(|&a| !a).collect())
    }

    /// Existentially quantifies one variable.
    fn exists(&self, var: usize) -> Table {
        let bit = 1usize << var;
        Table((0..SIZE).map(|code| self.0[code & !bit] || self.0[code | bit]).collect())
    }

    /// Universally quantifies one variable.
    fn forall(&self, var: usize) -> Table {
        let bit = 1usize << var;
        Table((0..SIZE).map(|code| self.0[code & !bit] && self.0[code | bit]).collect())
    }

    fn restrict(&self, var: usize, value: bool) -> Table {
        let bit = 1usize << var;
        Table((0..SIZE).map(|code| self.0[if value { code | bit } else { code & !bit }]).collect())
    }

    /// Existentially quantifies every variable in `mask`.
    fn exists_mask(&self, mask: u64) -> Table {
        let mut t = self.clone();
        for v in 0..N {
            if mask >> v & 1 == 1 {
                t = t.exists(v);
            }
        }
        t
    }

    fn count(&self) -> u64 {
        self.0.iter().filter(|&&b| b).count() as u64
    }

    /// Checks the BDD agrees on every input code.
    fn matches(&self, bdd: &Bdd, r: BddRef) -> bool {
        (0..SIZE).all(|code| bdd.eval(r, code as u64) == self.0[code])
    }
}

/// A random cube as per-variable trits (0 absent, 1 positive, 2 negative).
fn arb_cube() -> impl Strategy<Value = Cube> {
    proptest::collection::vec(0u8..3, N).prop_map(|trits| {
        Cube::from_literals(trits.iter().enumerate().filter_map(|(v, &t)| match t {
            1 => Some(Literal::pos(v)),
            2 => Some(Literal::neg(v)),
            _ => None,
        }))
        .expect("distinct variables cannot conflict")
    })
}

fn arb_cover() -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(), 1..6).prop_map(Cover::from_cubes)
}

fn mask_to_varset(mask: u64) -> VarSet {
    (0..N).filter(|&v| mask >> v & 1 == 1).collect()
}

proptest! {
    /// `ite` is pointwise if-then-else (and the basis everything else
    /// reduces to).
    #[test]
    fn ite_matches_the_truth_table(f in arb_cover(), g in arb_cover(), h in arb_cover()) {
        let mut bdd = Bdd::new();
        let (rf, rg, rh) = (bdd.from_cover(&f), bdd.from_cover(&g), bdd.from_cover(&h));
        let r = bdd.ite(rf, rg, rh);
        let (tf, tg, th) = (Table::of_cover(&f), Table::of_cover(&g), Table::of_cover(&h));
        let expected = Table(
            (0..SIZE).map(|c| if tf.0[c] { tg.0[c] } else { th.0[c] }).collect(),
        );
        prop_assert!(expected.matches(&bdd, r));
    }

    /// and/or/xor/not agree with the oracle, and canonicity makes
    /// equivalent formulations pointer-equal (De Morgan).
    #[test]
    fn connectives_match_the_truth_table(f in arb_cover(), g in arb_cover()) {
        let mut bdd = Bdd::new();
        let (rf, rg) = (bdd.from_cover(&f), bdd.from_cover(&g));
        let (tf, tg) = (Table::of_cover(&f), Table::of_cover(&g));
        let and = bdd.and(rf, rg);
        prop_assert!(tf.zip(&tg, |a, b| a && b).matches(&bdd, and));
        let or = bdd.or(rf, rg);
        prop_assert!(tf.zip(&tg, |a, b| a || b).matches(&bdd, or));
        let xor = bdd.xor(rf, rg);
        prop_assert!(tf.zip(&tg, |a, b| a != b).matches(&bdd, xor));
        let not = bdd.not(rf);
        prop_assert!(tf.not().matches(&bdd, not));
        // De Morgan, canonically: ¬(f ∧ g) is the same node as ¬f ∨ ¬g.
        let nand = bdd.not(and);
        let ng = bdd.not(rg);
        let demorgan = bdd.or(not, ng);
        prop_assert_eq!(nand, demorgan);
    }

    /// exists/forall/restrict match the per-variable oracle.
    #[test]
    fn quantifiers_match_the_truth_table(f in arb_cover(), var in 0usize..N) {
        let mut bdd = Bdd::new();
        let rf = bdd.from_cover(&f);
        let tf = Table::of_cover(&f);
        let ex = bdd.exists(rf, var);
        prop_assert!(tf.exists(var).matches(&bdd, ex));
        let fa = bdd.forall(rf, var);
        prop_assert!(tf.forall(var).matches(&bdd, fa));
        let r1 = bdd.restrict(rf, var, true);
        prop_assert!(tf.restrict(var, true).matches(&bdd, r1));
        let r0 = bdd.restrict(rf, var, false);
        prop_assert!(tf.restrict(var, false).matches(&bdd, r0));
    }

    /// Satisfy counts — classic and set-restricted — equal the oracle's
    /// popcount.
    #[test]
    fn sat_counts_match_the_truth_table(f in arb_cover()) {
        let mut bdd = Bdd::new();
        let rf = bdd.from_cover(&f);
        let tf = Table::of_cover(&f);
        prop_assert_eq!(bdd.sat_count(rf, N), tf.count());
        let all: VarSet = (0..N).collect();
        prop_assert_eq!(bdd.sat_count_set(rf, &all), tf.count());
        // Two spare variables outside the support double the count twice.
        let wider: VarSet = (0..N + 2).collect();
        prop_assert_eq!(bdd.sat_count_set(rf, &wider), tf.count() << 2);
    }

    /// The relational product `∃S. f ∧ g` equals quantifying the
    /// conjunction — against the oracle and against the BDD's own
    /// two-step computation.
    #[test]
    fn relational_product_matches_the_truth_table(
        f in arb_cover(),
        g in arb_cover(),
        mask in 0u64..(1 << N),
    ) {
        let mut bdd = Bdd::new();
        let (rf, rg) = (bdd.from_cover(&f), bdd.from_cover(&g));
        let set = mask_to_varset(mask);
        let product = bdd.and_exists(rf, rg, &set);
        let expected = Table::of_cover(&f)
            .zip(&Table::of_cover(&g), |a, b| a && b)
            .exists_mask(mask);
        prop_assert!(expected.matches(&bdd, product));
        let conj = bdd.and(rf, rg);
        let two_step = bdd.exists_set(conj, &set);
        prop_assert_eq!(product, two_step);
    }

    /// exists_set on its own also matches the oracle.
    #[test]
    fn exists_set_matches_the_truth_table(f in arb_cover(), mask in 0u64..(1 << N)) {
        let mut bdd = Bdd::new();
        let rf = bdd.from_cover(&f);
        let set = mask_to_varset(mask);
        let r = bdd.exists_set(rf, &set);
        prop_assert!(Table::of_cover(&f).exists_mask(mask).matches(&bdd, r));
    }

    /// Mark-and-sweep keeps every root (and protected ref) pointwise
    /// intact, keeps canonicity (rebuilding a live function finds the
    /// same node), and actually frees the garbage it claims to.
    #[test]
    fn gc_preserves_live_functions(f in arb_cover(), g in arb_cover(), h in arb_cover()) {
        let mut bdd = Bdd::new();
        let (rf, rg) = (bdd.from_cover(&f), bdd.from_cover(&g));
        let and = bdd.and(rf, rg);
        // Garbage: a pile of intermediates no root will keep alive.
        let rh = bdd.from_cover(&h);
        let dead = bdd.xor(rh, and);
        bdd.ite(dead, rh, rf);
        bdd.protect(rg);
        let live_before = bdd.stats().live_nodes;
        let collected = bdd.gc(&[rf, and]);
        let stats = bdd.stats();
        prop_assert_eq!(stats.live_nodes + collected, live_before);
        let (tf, tg) = (Table::of_cover(&f), Table::of_cover(&g));
        prop_assert!(tf.matches(&bdd, rf));
        prop_assert!(tg.matches(&bdd, rg), "protected ref survives");
        prop_assert!(tf.zip(&tg, |a, b| a && b).matches(&bdd, and));
        // The unique table still canonicalizes into the survivors.
        prop_assert_eq!(bdd.from_cover(&f), rf);
        prop_assert_eq!(bdd.and(rf, rg), and);
        bdd.unprotect(rg);
    }

    /// Watermark-triggered collection fires on its own and never
    /// disturbs the protected working set.
    #[test]
    fn gc_watermark_fires_without_corrupting_roots(f in arb_cover(), g in arb_cover()) {
        let mut bdd = Bdd::new();
        bdd.set_gc_watermark(Some(8));
        // Protect each root the moment it exists: with the watermark
        // armed, any unprotected ref can die at the next operation entry.
        let rf = bdd.from_cover(&f);
        bdd.protect(rf);
        let rg = bdd.from_cover(&g);
        bdd.protect(rg);
        // Churn: transient conjunctions of restrictions, garbage once
        // each iteration ends. Per the watermark contract, every ref
        // held across an operation is protected for exactly that long.
        for var in 0..N {
            let a = bdd.restrict(rf, var, true);
            bdd.protect(a);
            let b = bdd.restrict(rg, var, false);
            bdd.protect(b);
            bdd.and(a, b);
            bdd.unprotect(a);
            bdd.unprotect(b);
        }
        bdd.or(rf, rg); // one more entry so the last batch of garbage is seen
        let stats = bdd.stats();
        prop_assert!(
            stats.gc_runs >= 1 || stats.live_nodes <= 8,
            "watermark of 8 must trigger once live nodes exceed it (stats: {stats:?})"
        );
        prop_assert!(Table::of_cover(&f).matches(&bdd, rf));
        prop_assert!(Table::of_cover(&g).matches(&bdd, rg));
    }

    /// An explicit permutation of the variable order changes no
    /// function: refs stay valid, evaluation and counts are unchanged,
    /// and results computed before and after the reorder coincide.
    #[test]
    fn reorder_is_function_invariant(
        f in arb_cover(),
        g in arb_cover(),
        picks in proptest::collection::vec(0usize..N, 0..N),
    ) {
        let mut order = Vec::new();
        for v in picks {
            if !order.contains(&v) {
                order.push(v);
            }
        }
        let mut bdd = Bdd::new();
        let (rf, rg) = (bdd.from_cover(&f), bdd.from_cover(&g));
        let before = bdd.and(rf, rg);
        let count_before = bdd.sat_count(rf, N);
        bdd.reorder(&order);
        let (tf, tg) = (Table::of_cover(&f), Table::of_cover(&g));
        prop_assert!(tf.matches(&bdd, rf));
        prop_assert!(tg.matches(&bdd, rg));
        prop_assert_eq!(bdd.sat_count(rf, N), count_before);
        prop_assert!(tf.zip(&tg, |a, b| a && b).matches(&bdd, before));
        prop_assert_eq!(bdd.and(rf, rg), before, "same function, same node");
        prop_assert!(bdd.stats().reorders >= 1);
    }

    /// Sifting — GC plus a greedy search over all orders — is likewise
    /// invisible to every function it was given as a root.
    #[test]
    fn sifting_is_function_invariant(f in arb_cover(), g in arb_cover()) {
        let mut bdd = Bdd::new();
        let (rf, rg) = (bdd.from_cover(&f), bdd.from_cover(&g));
        let both = bdd.xor(rf, rg);
        let count_before = bdd.sat_count(both, N);
        bdd.sift(&[rf, rg, both]);
        let (tf, tg) = (Table::of_cover(&f), Table::of_cover(&g));
        prop_assert!(tf.matches(&bdd, rf));
        prop_assert!(tg.matches(&bdd, rg));
        prop_assert!(tf.zip(&tg, |a, b| a != b).matches(&bdd, both));
        prop_assert_eq!(bdd.sat_count(both, N), count_before);
        // And the manager still computes correctly in the found order.
        let and = bdd.and(rf, rg);
        prop_assert!(tf.zip(&tg, |a, b| a && b).matches(&bdd, and));
        prop_assert!(bdd.stats().reorders >= 1);
    }

    /// Renaming along the interleave map `v → 2v` relocates every input
    /// bit, and renaming back restores the exact original node.
    #[test]
    fn rename_is_an_order_preserving_bijection(f in arb_cover()) {
        let mut bdd = Bdd::new();
        let rf = bdd.from_cover(&f);
        let tf = Table::of_cover(&f);
        let spread: Vec<(usize, usize)> = (0..N).map(|v| (v, 2 * v)).collect();
        let wide = bdd.rename(rf, &spread);
        // Evaluate the renamed function on spread-out codes.
        for code in 0..SIZE {
            let mut spread_code = 0u64;
            for v in 0..N {
                if code >> v & 1 == 1 {
                    spread_code |= 1 << (2 * v);
                }
            }
            prop_assert_eq!(bdd.eval(wide, spread_code), tf.0[code]);
        }
        let narrow: Vec<(usize, usize)> = (0..N).map(|v| (2 * v, v)).collect();
        prop_assert_eq!(bdd.rename(wide, &narrow), rf, "round-trip is the identity node");
    }
}
