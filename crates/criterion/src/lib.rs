//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network registry, so this workspace ships
//! a dependency-free shim exposing the subset of the criterion 0.5 API the
//! `simap-bench` benches use: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`]. Timing is a plain warmup + fixed-sample-count
//! wall-clock measurement reporting min/median/mean per benchmark; there
//! is no outlier analysis, HTML report or statistical regression test.
//! Swapping the real crate back in is a one-line change in the workspace
//! `Cargo.toml`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const WARMUP_ITERS: usize = 2;

/// Identifier of one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name: `&str`, `String` or a
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id as the printed benchmark name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` `sample_size` times after a short warmup, recording the
    /// wall-clock duration of each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{full_name:40} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{full_name:40} min {min:>10.2?}  median {median:>10.2?}  mean {mean:>10.2?}  ({} samples)",
        samples.len()
    );
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Times `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Times `f` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id(), DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE, _criterion: self }
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("group");
        group.sample_size(3);
        group.bench_function("inner", |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        noop_bench(&mut c);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).into_benchmark_id(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
