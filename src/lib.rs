//! # simap — Speed-Independent circuit technology MAPping
//!
//! A production-quality reproduction of *"Technology Mapping of
//! Speed-Independent Circuits Based on Combinational Decomposition and
//! Resynthesis"* (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DATE 1997): multi-level logic synthesis for asynchronous
//! speed-independent circuits targeting bounded-fanin standard-cell
//! libraries.
//!
//! ## Three entry tiers
//!
//! The same flow is reachable at three altitudes — pick by how long your
//! process lives:
//!
//! 1. **One-shot CLI** — `simap map spec.g --json`, `simap check`,
//!    `simap bench run`: parse, synthesize, print, exit. Each invocation
//!    is a fresh process; nothing is shared.
//! 2. **Library [`Engine`]** — embed the flow in your own long-running
//!    program: one validated [`Config`], one thread-safe engine, a warm
//!    elaboration cache across every run (the quickstart below).
//! 3. **`simap serve`** — host the flow as an HTTP/1.1 service
//!    ([`serve`], `simap serve --addr --jobs --queue-limit`): many
//!    clients share ONE engine through a bounded job queue with
//!    backpressure (`429`), async polling (`GET /jobs/{id}`), NDJSON
//!    progress streaming and `/metrics`. Responses are byte-identical
//!    to the CLI's `--json` output for the same request, so tiers 1 and
//!    3 are interchangeable for consumers.
//!
//! ## Quickstart (tier 2: the library)
//!
//! Describe a run with one validated [`Config`], then execute it through
//! an [`Engine`] — the thread-safe, cheaply-cloneable front door that
//! owns the benchmark registry, the gate library and a memoized
//! elaboration cache:
//!
//! ```
//! use simap::{Config, Engine};
//!
//! let engine = Engine::new(Config::builder().literal_limit(2).build()?);
//! let report = engine.synthesize("hazard")?;
//! assert!(report.inserted.is_some(), "hazard is 2-input implementable");
//! assert_eq!(report.verified, Some(true), "and provably speed-independent");
//!
//! // Re-running on the same engine skips STG→state-graph reachability:
//! engine.synthesize("hazard")?;
//! assert_eq!(engine.cache_stats().hits, 1);
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! The service tier (3) is the same engine behind a socket — a client
//! POSTing `{"bench":"hazard"}` to `/synthesize` gets exactly the bytes
//! `simap map --bench hazard --json` prints, and repeated requests hit
//! the shared cache:
//!
//! ```
//! use simap::serve::{ServeConfig, Server};
//!
//! let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() })?;
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run());
//! // ... serve traffic ...
//! handle.shutdown(); // graceful: accepted jobs drain first
//! running.join().unwrap()?;
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! ## Bring your own `.g`
//!
//! Specifications from outside the embedded suite enter through the same
//! hardened parser at every tier: `simap check`/`simap map my.g` on the
//! CLI, [`Engine::g_source`] in the library, and `POST /stg` against
//! `simap serve` — the body is either the raw `.g` text or a JSON
//! envelope `{"source": "...", ...}` with per-request knobs. The `/stg`
//! response is byte-identical to `simap map my.g --json` for the same
//! source, requests are metered by the full gateway chain (auth, rate
//! limits, breaker), and repeated submissions of the same bytes are
//! answered from the content-addressed result cache without enqueueing
//! work. Malformed input is rejected (HTTP `422`) with a 1-based
//! line/column ([`stg::ParseStgError`]), and resource caps bound what a
//! hostile spec can allocate before the parser gives up:
//! [`stg::MAX_LINE_BYTES`], [`stg::MAX_SIGNALS`],
//! [`stg::MAX_TRANSITIONS`], [`stg::MAX_PLACES`], [`stg::MAX_ARCS`].
//! For load testing there is a seeded, byte-reproducible spec generator:
//! `simap gen --seed 1 --count 100 --out-dir specs`
//! ([`stg::patterns::corpus`] in the library).
//!
//! ```
//! use simap::{Config, Engine};
//!
//! let source = "\
//! .model ring
//! .inputs a
//! .outputs b
//! .graph
//! a+ b+
//! b+ a-
//! a- b-
//! b- a+
//! .marking { <b-,a+> }
//! .end
//! ";
//! let engine = Engine::new(Config::default());
//! let report = engine.g_source(source).run()?;
//! assert_eq!(report.name, "ring");
//! assert_eq!(report.verified, Some(true));
//!
//! // Malformed text names the offending line and column.
//! let err = simap::stg::parse_g(".inputsx y\n.graph\n.end\n").unwrap_err();
//! assert_eq!(err.to_string(), "line 1, col 1: unknown directive `.inputsx`");
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! Cold elaboration runs on one of four reachability strategies (see
//! [`simap_stg::reach`] for the full selection guide): the packed-state
//! default — bit-packed markings in a contiguous arena with
//! mask-compiled transitions, plus [`ReachConfig::jobs`] parallel
//! frontier expansion with byte-identical results; the legacy explicit
//! BFS ([`ReachStrategy::Explicit`]), an independent differential
//! oracle for validating changes to the hot path; the symbolic BDD
//! engine ([`ReachStrategy::Symbolic`]), which represents the reachable
//! set of a 1-safe net as a Boolean function — exact state counts and
//! CSC verdicts without enumerating a marking; and the external-memory
//! spill engine ([`ReachStrategy::Spill`]), which keeps the packed
//! engine's semantics and numbering but bounds the resident working set
//! by [`ConfigBuilder::reach_memory_budget`], cycling marking pages,
//! frontier runs and the edge log through scratch files
//! ([`ConfigBuilder::reach_spill_dir`]) so nets larger than RAM still
//! *materialize* — the door to synthesizing, not just counting, huge
//! specifications:
//!
//! ```
//! use simap::{Config, Engine, ReachStrategy};
//!
//! let oracle = Config::builder().reach_strategy(ReachStrategy::Explicit).build()?;
//! let fast = Config::builder().reach_jobs(4).build()?;
//! let engine = Engine::new(fast);
//! let elaborated = engine.benchmark("hazard").elaborate()?;
//! let stats = elaborated.reach_stats().expect("fresh elaboration");
//! assert_eq!(stats.interned, elaborated.state_graph().state_count());
//! # let _ = oracle;
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! The symbolic engine is the door to state spaces no enumerative engine
//! can touch: [`simap_stg::reach_symbolic`] reports the exact count,
//! per-signal excitation/quiescence regions and CSC conflict codes of
//! spaces with billions of markings, and materializes an explicit
//! [`sg::StateGraph`] — byte-identical to the other strategies — only
//! while the count stays under
//! [`ConfigBuilder::reach_materialize_limit`]:
//!
//! ```
//! use simap::stg::{patterns, reach_symbolic, ReachConfig};
//!
//! // Ten independent 4-state rings: 4^10 ≈ 1M markings, counted exactly.
//! let parts: Vec<_> = (0..10).map(|_| patterns::sequencer(2, None)).collect();
//! let grid = patterns::parallel("grid", &parts);
//! let sym = reach_symbolic(&grid, &ReachConfig { max_states: 1000, ..Default::default() })?;
//! assert_eq!(sym.states, 4u64.pow(10));
//! assert!(sym.graph.is_none(), "too big to materialize, still analyzable");
//! assert!(sym.csc_conflict_codes.is_empty());
//! # Ok::<(), simap::stg::ReachError>(())
//! ```
//!
//! When the flow needs the *graph* of such a net — synthesis does — the
//! spill engine builds it with a bounded resident set, byte-identical
//! to the packed default:
//!
//! ```
//! use simap::stg::{benchmark, elaborate_with_stats};
//! use simap::{ReachConfig, ReachStrategy};
//!
//! let stg = benchmark("mr0").expect("embedded benchmark");
//! let config = ReachConfig {
//!     strategy: ReachStrategy::Spill,
//!     memory_budget: 1024 * 1024, // 1 MiB forces real disk traffic here
//!     ..ReachConfig::default()
//! };
//! let (sg, stats) = elaborate_with_stats(&stg, &config)?;
//! let spill = stats.spill.expect("spill runs report their counters");
//! assert_eq!(sg.state_count(), 4096);
//! assert!(spill.spilled_bytes > 0 && spill.resident_peak <= spill.budget);
//! # Ok::<(), simap::stg::ReachError>(())
//! ```
//!
//! ## Long-running elaborations: checkpoint and resume
//!
//! A spill elaboration that runs for hours should not restart from
//! zero after a crash, an OOM kill or a preempted machine. With
//! [`ConfigBuilder::reach_checkpoint_every`] the engine atomically
//! snapshots its full exploration state — arena pages, shard intern
//! tables, pending frontier, edge log, all under a checksummed,
//! versioned manifest committed by temp-file-and-rename — into
//! [`ConfigBuilder::reach_checkpoint_dir`] every N BFS levels. `simap
//! check --resume <dir>` (and `map --resume`), or
//! [`ConfigBuilder::reach_resume`] programmatically, validates the
//! manifest against the current net and configuration — refusing with a
//! diagnostic that names the corrupt artifact or both mismatched
//! digests — and continues the level-synchronized BFS exactly where the
//! snapshot left it. The finished graph is **byte-identical** to an
//! uninterrupted run, so downstream synthesis, reports and caches never
//! know the run was interrupted.
//!
//! The cadence is a loss-window/overhead trade-off: `--checkpoint-every
//! 1` bounds the lost work to a single level but pays a write per level
//! (`bench run --record` tracks this as `spill.checkpoint_us` against
//! `spill.frontier_us`); sparse cadences amortize the writes at the
//! price of longer re-exploration after a crash. The [`reach.jobs`
//! knob](#which-jobs-knob-does-what) is the one that applies here:
//! frontier fan-out parallelizes the spill engine too, checkpoints are
//! only ever cut at level boundaries (so they are consistent at any
//! fan-out), and a run may resume under a different `jobs` or
//! `memory_budget` than it was started with — only `max_states`,
//! `max_tokens` and `shards` are pinned by the manifest's config
//! digest.
//!
//! ```
//! use simap::stg::{benchmark, elaborate_with_stats};
//! use simap::{ReachConfig, ReachStrategy};
//!
//! let dir = std::env::temp_dir().join(format!("simap-doc-ckpt-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).expect("create checkpoint dir");
//! let stg = benchmark("mr0").expect("embedded benchmark");
//! let config = ReachConfig {
//!     strategy: ReachStrategy::Spill,
//!     checkpoint_every: 4, // snapshot every 4 BFS levels
//!     checkpoint_dir: Some(dir.clone()),
//!     ..ReachConfig::default()
//! };
//! let (_, stats) = elaborate_with_stats(&stg, &config)?;
//! let spill = stats.spill.expect("spill counters");
//! assert!(spill.checkpoints_written > 0 && spill.checkpoint_bytes > 0);
//! assert_eq!(spill.resume_level, 0, "this run started cold");
//! // The run succeeded, so its checkpoints were cleaned away: nothing
//! // to resume, nothing leaked. After a crash the latest snapshot
//! // survives and `ReachConfig { resume: Some(dir), .. }` picks it up.
//! assert_eq!(std::fs::read_dir(&dir).expect("dir readable").count(), 0);
//! std::fs::remove_dir_all(&dir).expect("remove checkpoint dir");
//! # Ok::<(), simap::stg::ReachError>(())
//! ```
//!
//! [`Batch`] drives whole suites through one configuration — across a
//! worker pool with [`Batch::jobs`], with results byte-identical to a
//! sequential run:
//!
//! ```
//! use simap::{Config, Engine};
//!
//! let engine = Engine::new(Config::builder().verify(false).build()?);
//! let rows = engine.batch(["half", "hazard"]).limits([2, 3]).jobs(2).run()?;
//! println!("{}", simap::core::to_markdown(&[2, 3], &rows));
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! ## Which jobs knob does what
//!
//! Four independent fan-outs exist, one per granularity. All of them are
//! deterministic — results are byte-identical to a sequential run — so
//! they compose freely:
//!
//! | Knob | Set via | Fans out | Scope |
//! |------|---------|----------|-------|
//! | `reach.jobs` | [`ConfigBuilder::reach_jobs`], CLI `--reach-jobs` on `check`/`map` | frontier expansion *inside one elaboration* (packed/spill strategies) | one STG → state-graph run |
//! | `synth_jobs` | [`ConfigBuilder::synth_jobs`], CLI `--synth-jobs`, serve request field `synth_jobs` | per-signal cover synthesis and candidate evaluation *inside one synthesis* | one flow's Covers + Decompose stages |
//! | batch `--jobs` | [`Batch::jobs`], CLI `bench run --jobs` | whole specifications across a worker pool | many flows, one process |
//! | serve `--jobs` | `simap serve --jobs` | concurrent HTTP jobs over one shared engine | many flows, many clients |
//!
//! `synth_jobs` parallelizes the per-output-signal work of the paper's
//! core loop — monotonous-cover synthesis and decomposition candidate
//! resynthesis — and merges results in signal-index order, so reports,
//! observer event sequences and netlists never depend on the thread
//! count. Like `reach.jobs` it is excluded from the elaboration cache
//! key: runs differing only in fan-out share cache entries.
//!
//! ```
//! use simap::core::report_json;
//! use simap::{Config, Engine};
//!
//! let sequential = Engine::new(Config::builder().synth_jobs(1).build()?);
//! let fanned = Engine::new(Config::builder().synth_jobs(4).build()?);
//! let (a, b) = (sequential.synthesize("hazard")?, fanned.synthesize("hazard")?);
//! assert_eq!(report_json(&a), report_json(&b), "byte-identical at any fan-out");
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! Every intermediate artifact of the flow is a typed, `Send + 'static`
//! stage value that can be inspected, cached or moved across threads:
//!
//! ```
//! use simap::{Config, Engine};
//!
//! let engine = Engine::new(Config::default());
//! let elaborated = engine.benchmark("hazard").elaborate()?;
//! assert!(elaborated.properties().is_ok()); // §2.1 checks
//!
//! let covers = elaborated.covers()?; // §2.2 monotonous covers
//! assert!(covers.mc().max_complexity() > 2, "needs decomposition");
//!
//! let decomposed = covers.decompose()?; // §3 insertion loop
//! let mapped = decomposed.map(); // standard-C netlist + §4 costs
//! let verified = mapped.verify()?; // semi-modularity check
//! assert_eq!(verified.verdict(), Some(true));
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! Failures of any stage surface as the unified [`Error`] enum with the
//! stage and the offending signals attached, and [`FlowObserver`] hooks
//! stream per-step progress ([`Synthesis::observer`]).
//!
//! ## Crates
//!
//! This facade re-exports the workspace crates:
//!
//! * [`boolean`] — cube/SOP engine: minimization, algebraic division,
//!   kernels, factoring ([`simap_boolean`]);
//! * [`sg`] — state graphs, §2.1 property checks, §2.2 regions
//!   ([`simap_sg`]);
//! * [`stg`] — signal transition graphs, the `.g` format, reachability,
//!   generators and the 32-benchmark suite ([`simap_stg`]);
//! * [`netlist`] — standard-C circuits, cost model, the non-SI baseline
//!   and the semi-modularity verifier ([`simap_netlist`]);
//! * [`core`] — monotonous covers, SIP event insertion, progress analysis,
//!   the decomposition loop, the [`pipeline`] and the [`Engine`]
//!   ([`simap_core`]);
//! * [`serve`] — the dependency-free HTTP/1.1 synthesis service: job
//!   queue, worker pool, metrics, NDJSON streaming ([`simap_serve`]).
//!
//! ## Deprecation policy
//!
//! The 0.2 per-stage configuration setters (`Synthesis::literal_limit`,
//! `Batch::verify`, …) were superseded in 0.3 by [`Config`] +
//! [`Synthesis::config`] / [`Batch::config`]; they remain available as
//! `#[deprecated]` shims with unchanged behavior for at least one minor
//! release before removal, as does `simap::core::run_flow` (deprecated in
//! 0.2). Algorithm primitives (`synthesize_mc`, `repair_csc`,
//! `compute_insertion`, `build_circuit`, …) are the stable substrate the
//! pipeline is built on and are not deprecated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use simap_boolean as boolean;
pub use simap_core as core;
pub use simap_netlist as netlist;
pub use simap_serve as serve;
pub use simap_sg as sg;
pub use simap_stg as stg;

pub use simap_core::pipeline;
pub use simap_core::{
    Batch, CacheStats, Config, ConfigBuilder, Covers, Decomposed, Elaborated, Engine, Error,
    FlowObserver, Mapped, Stage, Synthesis, Verified,
};
pub use simap_core::{EventObserver, FlowEvent, NullObserver, RecordingObserver, StderrObserver};
pub use simap_stg::{ReachConfig, ReachStats, ReachStrategy};
