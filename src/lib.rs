//! # simap — Speed-Independent circuit technology MAPping
//!
//! A production-quality reproduction of *"Technology Mapping of
//! Speed-Independent Circuits Based on Combinational Decomposition and
//! Resynthesis"* (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DATE 1997): multi-level logic synthesis for asynchronous
//! speed-independent circuits targeting bounded-fanin standard-cell
//! libraries.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`boolean`] — cube/SOP engine: minimization, algebraic division,
//!   kernels, factoring ([`simap_boolean`]);
//! * [`sg`] — state graphs, §2.1 property checks, §2.2 regions
//!   ([`simap_sg`]);
//! * [`stg`] — signal transition graphs, the `.g` format, reachability,
//!   generators and the 32-benchmark suite ([`simap_stg`]);
//! * [`netlist`] — standard-C circuits, cost model, the non-SI baseline
//!   and the semi-modularity verifier ([`simap_netlist`]);
//! * [`core`] — monotonous covers, SIP event insertion, progress analysis
//!   and the decomposition loop ([`simap_core`]).
//!
//! ## Quickstart
//!
//! ```
//! use simap::core::{run_flow, FlowConfig};
//!
//! // Load a benchmark STG, elaborate it and map it onto 2-input gates.
//! let stg = simap::stg::benchmark("hazard").ok_or("unknown benchmark")?;
//! let sg = simap::stg::elaborate(&stg)?;
//! let report = run_flow(&sg, &FlowConfig::with_limit(2))?;
//! assert!(report.inserted.is_some(), "hazard is 2-input implementable");
//! assert_eq!(report.verified, Some(true), "and provably speed-independent");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use simap_boolean as boolean;
pub use simap_core as core;
pub use simap_netlist as netlist;
pub use simap_sg as sg;
pub use simap_stg as stg;
