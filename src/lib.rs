//! # simap — Speed-Independent circuit technology MAPping
//!
//! A production-quality reproduction of *"Technology Mapping of
//! Speed-Independent Circuits Based on Combinational Decomposition and
//! Resynthesis"* (Cortadella, Kishinevsky, Kondratyev, Lavagno, Yakovlev —
//! DATE 1997): multi-level logic synthesis for asynchronous
//! speed-independent circuits targeting bounded-fanin standard-cell
//! libraries.
//!
//! ## Quickstart
//!
//! The whole flow — STG → state graph → monotonous covers →
//! decomposition/resynthesis → standard-C netlist → speed-independence
//! verification — hangs off one entry point, the [`Synthesis`] builder:
//!
//! ```
//! use simap::Synthesis;
//!
//! let report = simap::Synthesis::from_benchmark("hazard")
//!     .literal_limit(2) // map onto gates of at most 2 literals
//!     .run()?;
//! assert!(report.inserted.is_some(), "hazard is 2-input implementable");
//! assert_eq!(report.verified, Some(true), "and provably speed-independent");
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! Every intermediate artifact is a typed stage value that can be
//! inspected, cached or fanned out:
//!
//! ```
//! use simap::Synthesis;
//!
//! let elaborated = Synthesis::from_benchmark("hazard").elaborate()?;
//! assert!(elaborated.properties().is_ok()); // §2.1 checks
//!
//! let covers = elaborated.covers()?; // §2.2 monotonous covers
//! assert!(covers.mc().max_complexity() > 2, "needs decomposition");
//!
//! let decomposed = covers.decompose()?; // §3 insertion loop
//! let mapped = decomposed.map(); // standard-C netlist + §4 costs
//! let verified = mapped.verify()?; // semi-modularity check
//! assert_eq!(verified.verdict(), Some(true));
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! Failures of any stage surface as the unified [`Error`] enum with the
//! stage and the offending signals attached, [`FlowObserver`] hooks
//! stream per-step progress, and [`Batch`] drives whole benchmark suites:
//!
//! ```
//! use simap::Batch;
//!
//! let rows = Batch::over_benchmarks(["half", "hazard"]).limits([2]).run()?;
//! println!("{}", simap::core::to_markdown(&[2], &rows));
//! # Ok::<(), simap::Error>(())
//! ```
//!
//! ## Crates
//!
//! This facade re-exports the workspace crates:
//!
//! * [`boolean`] — cube/SOP engine: minimization, algebraic division,
//!   kernels, factoring ([`simap_boolean`]);
//! * [`sg`] — state graphs, §2.1 property checks, §2.2 regions
//!   ([`simap_sg`]);
//! * [`stg`] — signal transition graphs, the `.g` format, reachability,
//!   generators and the 32-benchmark suite ([`simap_stg`]);
//! * [`netlist`] — standard-C circuits, cost model, the non-SI baseline
//!   and the semi-modularity verifier ([`simap_netlist`]);
//! * [`core`] — monotonous covers, SIP event insertion, progress analysis,
//!   the decomposition loop and the [`pipeline`] ([`simap_core`]).
//!
//! ## Deprecation policy
//!
//! Flow-level free functions superseded by [`Synthesis`] (today:
//! `simap::core::run_flow`) remain available as `#[deprecated]` shims
//! with unchanged behavior for at least one minor release before
//! removal. Algorithm primitives (`synthesize_mc`, `repair_csc`,
//! `compute_insertion`, `build_circuit`, …) are the stable substrate the
//! pipeline is built on and are not deprecated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use simap_boolean as boolean;
pub use simap_core as core;
pub use simap_netlist as netlist;
pub use simap_sg as sg;
pub use simap_stg as stg;

pub use simap_core::pipeline;
pub use simap_core::{
    Batch, Covers, Decomposed, Elaborated, Error, FlowObserver, Mapped, Stage, Synthesis, Verified,
};
pub use simap_core::{NullObserver, RecordingObserver, StderrObserver};
