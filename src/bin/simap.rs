//! `simap` — command-line front-end to the speed-independent technology
//! mapper.
//!
//! ```text
//! simap check <spec.g> [options]      verify the specification's properties
//! simap map   <spec.g> [options]      run the full mapping flow
//! simap bench list [--json]            list the embedded Table 1 circuits
//! simap bench run [name ...] [opts]   batch the suite through one config
//! simap serve [options]               host the flow as an HTTP service
//!
//! check options:
//!       --strategy <s>   reachability engine: packed (default) | explicit | symbolic
//!       --materialize-limit <n>  symbolic: largest state space built explicitly
//!       --bench <name>   use an embedded benchmark instead of a file
//!
//! map options:
//!   -l, --limit <n>      literal limit (default 2)
//!       --csc-repair     repair CSC violations by state-signal insertion
//!       --no-verify      skip the final speed-independence verification
//!       --or-limit <n>   split second-level OR gates to <= n inputs
//!       --strategy <s>   reachability engine: packed (default) | explicit | symbolic
//!       --reach-jobs <n> frontier-expansion threads (packed; same output)
//!       --materialize-limit <n>  symbolic: largest state space built explicitly
//!   -v, --verbose        narrate stages and insertions to stderr
//!       --json           print the report as JSON instead of the dossier
//!       --verilog <f>    write the mapped netlist as structural Verilog
//!       --dot <f>        write the final state graph as Graphviz dot
//!       --bench <name>   use an embedded benchmark instead of a file
//!
//! bench run options:
//!       --limits <a,b>   literal limits (default 2)
//!   -j, --jobs <n>       worker threads (default 1; results identical)
//!       --strategy <s>   reachability engine: packed (default) | explicit | symbolic
//!       --reach-jobs <n> frontier-expansion threads (packed; same output)
//!       --materialize-limit <n>  symbolic: largest state space built explicitly
//!       --csc-repair     repair CSC violations by state-signal insertion
//!       --no-verify      skip speed-independence verification
//!       --json|--csv     emit JSON / CSV instead of the markdown table
//!   -v, --verbose        report elaboration-cache statistics to stderr
//!
//! serve options:
//!       --addr <a>       address to bind (default 127.0.0.1:7317)
//!   -j, --jobs <n>       synthesis worker threads (default: CPU count)
//!       --queue-limit <n> bounded job queue; full => 429 (default 64)
//! ```
//!
//! `simap serve` hosts the same flow as a long-running HTTP/1.1 service
//! over one shared engine (warm elaboration cache across clients); see
//! the `simap_serve` crate docs for the wire protocol. It shuts down
//! gracefully — draining accepted jobs — on SIGTERM or ctrl-c.
//!
//! Unknown flags and flags missing their value are rejected with an
//! error (exit code 1) instead of being silently ignored.

use simap::core::{benchmarks_json, dossier, report_json, to_csv, to_json, to_markdown};
use simap::netlist::to_verilog;
use simap::sg::DotOptions;
use simap::{Config, Engine, StderrObserver, Synthesis};
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("map") => map(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => {
            eprintln!("usage: simap <check|map|bench|serve> ...   (see --help in the README)");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// One accepted flag of a subcommand.
struct FlagSpec {
    /// Canonical name (`--limit`).
    name: &'static str,
    /// Optional short alias (`-l`).
    alias: Option<&'static str>,
    /// Whether the flag consumes the following argument as its value.
    takes_value: bool,
}

const fn flag(name: &'static str) -> FlagSpec {
    FlagSpec { name, alias: None, takes_value: false }
}

const fn valued(name: &'static str) -> FlagSpec {
    FlagSpec { name, alias: None, takes_value: true }
}

const fn aliased(mut spec: FlagSpec, alias: &'static str) -> FlagSpec {
    spec.alias = Some(alias);
    spec
}

/// Strictly parsed arguments of one subcommand: every flag was declared,
/// every valued flag has its value.
struct Parsed {
    positionals: Vec<String>,
    flags: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
}

impl Parsed {
    fn has(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        // Last occurrence wins, matching common CLI conventions.
        self.values.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Parses `args` against the accepted `specs`.
///
/// # Errors
/// An unknown flag, or a valued flag with no following argument.
fn parse_flags(args: &[String], specs: &[FlagSpec]) -> Result<Parsed, String> {
    let mut parsed = Parsed { positionals: Vec::new(), flags: Vec::new(), values: Vec::new() };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if !arg.starts_with('-') || arg == "-" {
            parsed.positionals.push(arg.clone());
            continue;
        }
        let spec = specs
            .iter()
            .find(|s| s.name == arg || s.alias == Some(arg.as_str()))
            .ok_or_else(|| format!("unknown flag `{arg}`"))?;
        if spec.takes_value {
            let value = iter.next().ok_or_else(|| format!("flag `{arg}` requires a value"))?;
            parsed.values.push((spec.name, value.clone()));
        } else {
            parsed.flags.push(spec.name);
        }
    }
    Ok(parsed)
}

/// Builds a [`Synthesis`] from the parsed source arguments: `--bench
/// <name>` takes precedence; otherwise the first positional argument is a
/// `.g` file path.
fn synthesis(parsed: &Parsed) -> Result<Synthesis, Box<dyn Error>> {
    if let Some(name) = parsed.value("--bench") {
        return Ok(Synthesis::from_benchmark(name));
    }
    let Some(path) = parsed.positionals.first() else {
        return Err("no specification given (pass a .g file or --bench <name>)".into());
    };
    Ok(Synthesis::from_g_source(std::fs::read_to_string(path)?))
}

/// Applies the shared reachability flags (`--strategy`, `--reach-jobs`,
/// `--materialize-limit`) to a configuration builder.
fn reach_flags(
    parsed: &Parsed,
    mut builder: simap::ConfigBuilder,
) -> Result<simap::ConfigBuilder, Box<dyn Error>> {
    if let Some(strategy) = parsed.value("--strategy") {
        builder = builder.reach_strategy(strategy.parse::<simap::ReachStrategy>()?);
    }
    if let Some(jobs) = parsed.value("--reach-jobs") {
        builder = builder.reach_jobs(jobs.parse()?);
    }
    if let Some(limit) = parsed.value("--materialize-limit") {
        builder = builder.reach_materialize_limit(limit.parse()?);
    }
    Ok(builder)
}

fn check(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[valued("--bench"), valued("--strategy"), valued("--materialize-limit")],
    )?;
    let config = reach_flags(&parsed, Config::builder())?.build()?;
    let elaborated = synthesis(&parsed)?.config(&config).elaborate()?;
    let sg = elaborated.state_graph();
    let report = elaborated.properties();
    println!("{}: {} signals, {} states", sg.name(), sg.signal_count(), sg.state_count());
    if let Some(stats) = elaborated.reach_stats() {
        println!(
            "  elaboration: {} markings visited, {} interned, {} edges ({})",
            stats.visited, stats.interned, stats.edges, stats.strategy
        );
    }
    println!("  speed-independent: {}", report.is_speed_independent());
    println!("  complete state coding: {}", report.has_csc());
    for v in report.violations.iter().take(10) {
        println!("  violation: {v}");
    }
    Ok(if report.is_ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn map(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[
            aliased(valued("--limit"), "-l"),
            valued("--or-limit"),
            valued("--verilog"),
            valued("--dot"),
            valued("--bench"),
            valued("--strategy"),
            valued("--reach-jobs"),
            valued("--materialize-limit"),
            flag("--csc-repair"),
            flag("--no-verify"),
            flag("--json"),
            aliased(flag("--verbose"), "-v"),
        ],
    )?;

    let mut builder = reach_flags(
        &parsed,
        Config::builder().repair_csc(parsed.has("--csc-repair")).verify(!parsed.has("--no-verify")),
    )?;
    if let Some(limit) = parsed.value("--limit") {
        builder = builder.literal_limit(limit.parse()?);
    }
    if let Some(limit) = parsed.value("--or-limit") {
        builder = builder.or_limit(limit.parse()?);
    }
    let config = builder.build()?;

    let mut synthesis = synthesis(&parsed)?.config(&config);
    if parsed.has("--verbose") {
        synthesis = synthesis.observer(StderrObserver);
    }

    // Drive the stages explicitly so the mapped netlist is available for
    // the exporters without rebuilding it. Refutation is reported in the
    // dossier (`verified: Some(false)`), not raised as an error, so the
    // netlist exports below still run — matching the historical CLI.
    let mapped = synthesis.elaborate()?.covers()?.decompose()?.map();
    let verified = if config.verify() { mapped.verify_compat() } else { mapped.skip_verify() };
    let report = verified.report();
    let json = parsed.has("--json");
    if json {
        println!("{}", report_json(report));
    } else {
        print!("{}", dossier(report));
    }
    // In JSON mode stdout carries exactly one JSON document; export
    // confirmations move to stderr so `--json --verilog f` stays parseable.
    let confirm = |path: &str| {
        if json {
            eprintln!("wrote {path}");
        } else {
            println!("wrote {path}");
        }
    };

    if let Some(path) = parsed.value("--verilog") {
        let module = report.name.clone();
        std::fs::write(path, to_verilog(verified.circuit(), &report.outcome.sg, &module))?;
        confirm(path);
    }
    if let Some(path) = parsed.value("--dot") {
        std::fs::write(
            path,
            simap::sg::to_dot(
                &report.outcome.sg,
                &DotOptions { show_codes: true, ..Default::default() },
            ),
        )?;
        confirm(path);
    }
    Ok(if report.inserted.is_some() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn bench(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("list") => {
            let parsed = parse_flags(&args[1..], &[flag("--json")])?;
            let engine = Engine::default();
            if parsed.has("--json") {
                // The same machine-readable listing `simap serve` answers
                // on GET /benchmarks (byte-identical by construction).
                println!("{}", benchmarks_json(&engine)?);
                return Ok(ExitCode::SUCCESS);
            }
            for name in engine.registry().names() {
                let sg = engine.benchmark(*name).elaborate()?;
                let sg = sg.state_graph();
                println!("{name:15} {:2} signals {:5} states", sg.signal_count(), sg.state_count());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("run") => bench_run(&args[1..]),
        _ => {
            eprintln!("usage: simap bench <list|run> ...");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn bench_run(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[
            valued("--limits"),
            aliased(valued("--jobs"), "-j"),
            valued("--strategy"),
            valued("--reach-jobs"),
            valued("--materialize-limit"),
            flag("--csc-repair"),
            flag("--no-verify"),
            flag("--json"),
            flag("--csv"),
            aliased(flag("--verbose"), "-v"),
        ],
    )?;

    let limits: Vec<usize> = match parsed.value("--limits") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("bad --limits `{spec}`: {e}"))?,
        None => vec![2],
    };
    if limits.is_empty() {
        return Err("--limits needs at least one limit".into());
    }
    let jobs: usize = parsed.value("--jobs").map(str::parse).transpose()?.unwrap_or(1);

    let config = reach_flags(
        &parsed,
        Config::builder().repair_csc(parsed.has("--csc-repair")).verify(!parsed.has("--no-verify")),
    )?
    .build()?;
    let engine = Engine::new(config);

    let batch = if parsed.positionals.is_empty() {
        engine.batch_all()
    } else {
        engine.batch(parsed.positionals.iter().cloned())
    };
    let rows = batch.limits(limits.clone()).jobs(jobs).run()?;

    if parsed.has("--json") {
        println!("{}", to_json(&limits, &rows));
    } else if parsed.has("--csv") {
        print!("{}", to_csv(&limits, &rows));
    } else {
        print!("{}", to_markdown(&limits, &rows));
    }
    if parsed.has("--verbose") {
        let stats = engine.cache_stats();
        eprintln!(
            "elaboration cache: {} hits, {} misses, {} entries",
            stats.hits, stats.misses, stats.entries
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn serve(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[valued("--addr"), aliased(valued("--jobs"), "-j"), valued("--queue-limit")],
    )?;
    if let Some(extra) = parsed.positionals.first() {
        return Err(format!("serve takes no positional argument (got `{extra}`)").into());
    }
    // Flags override the library defaults; anything not given keeps
    // `ServeConfig::default()` so the CLI and library never diverge.
    let defaults = simap::serve::ServeConfig::default();
    let config = simap::serve::ServeConfig {
        addr: parsed.value("--addr").map(str::to_string).unwrap_or(defaults.addr),
        jobs: parsed.value("--jobs").map(str::parse).transpose()?.unwrap_or(defaults.jobs),
        queue_limit: parsed
            .value("--queue-limit")
            .map(str::parse)
            .transpose()?
            .unwrap_or(defaults.queue_limit),
        config: defaults.config,
    };
    let server = simap::serve::Server::bind(config)?;
    let handle = server.handle();
    eprintln!("simap serve: listening on http://{}", server.local_addr());

    // Signal handling: the handler only latches a flag (the only
    // async-signal-safe option); this watcher turns the latch into a
    // graceful drain. It also exits if the server stops some other way.
    simap::serve::shutdown_signal::install();
    let watcher = std::thread::spawn({
        let handle = handle.clone();
        move || {
            while !simap::serve::shutdown_signal::requested() && !handle.is_shutdown() {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            handle.shutdown();
        }
    });
    server.run()?;
    let _ = watcher.join();
    eprintln!("simap serve: drained and shut down cleanly");
    Ok(ExitCode::SUCCESS)
}
