//! `simap` — command-line front-end to the speed-independent technology
//! mapper.
//!
//! ```text
//! simap check <spec.g> [options]      verify the specification's properties
//! simap map   <spec.g> [options]      run the full mapping flow
//! simap bench list [--json]            list the embedded Table 1 circuits
//! simap bench run [name ...] [opts]   batch the suite through one config
//! simap gen [options]                 emit seeded `.g` corpus specs
//! simap serve [options]               host the flow as an HTTP service
//!
//! check options:
//!       --strategy <s>   reachability engine: packed (default) | explicit | symbolic | spill
//!       --reach-jobs <n> frontier-expansion threads (packed/spill; same output)
//!       --materialize-limit <n>  symbolic: largest state space built explicitly
//!       --memory-budget <b>  spill: resident working-set cap (e.g. 256MiB)
//!       --spill-dir <d>  spill: scratch directory (default: system temp)
//!       --shards <n>     spill: hash partitions of the intern table
//!       --checkpoint-every <n>  spill: commit a durable checkpoint every n BFS levels
//!       --checkpoint-dir <d>    spill: directory the checkpoints are committed to
//!       --resume <d>     spill: continue from the last checkpoint in <d>
//!       --synth-jobs <n> per-signal synthesis threads (same output)
//!       --bench <name>   use an embedded benchmark instead of a file
//!
//! map options:
//!   -l, --limit <n>      literal limit (default 2)
//!       --csc-repair     repair CSC violations by state-signal insertion
//!       --no-verify      skip the final speed-independence verification
//!       --or-limit <n>   split second-level OR gates to <= n inputs
//!       --strategy <s>   reachability engine: packed (default) | explicit | symbolic | spill
//!       --reach-jobs <n> frontier-expansion threads (packed/spill; same output)
//!       --synth-jobs <n> per-signal synthesis threads (same output)
//!       --materialize-limit <n>  symbolic: largest state space built explicitly
//!       --memory-budget <b>  spill: resident working-set cap (e.g. 256MiB)
//!       --spill-dir <d>  spill: scratch directory (default: system temp)
//!       --shards <n>     spill: hash partitions of the intern table
//!       --checkpoint-every <n>  spill: commit a durable checkpoint every n BFS levels
//!       --checkpoint-dir <d>    spill: directory the checkpoints are committed to
//!       --resume <d>     spill: continue from the last checkpoint in <d>
//!   -v, --verbose        narrate stages and insertions to stderr
//!       --json           print the report as JSON instead of the dossier
//!       --verilog <f>    write the mapped netlist as structural Verilog
//!       --dot <f>        write the final state graph as Graphviz dot
//!       --bench <name>   use an embedded benchmark instead of a file
//!
//! bench run options:
//!       --limits <a,b>   literal limits (default 2)
//!   -j, --jobs <n>       worker threads (default 1; results identical)
//!       --strategy <s>   reachability engine: packed (default) | explicit | symbolic | spill
//!       --reach-jobs <n> frontier-expansion threads (packed/spill; same output)
//!       --synth-jobs <n> per-signal synthesis threads (same output)
//!       --materialize-limit <n>  symbolic: largest state space built explicitly
//!       --memory-budget <b>  spill: resident working-set cap (e.g. 256MiB)
//!       --spill-dir <d>  spill: scratch directory (default: system temp)
//!       --shards <n>     spill: hash partitions of the intern table
//!       --checkpoint-every <n>  spill: commit a durable checkpoint every n BFS levels
//!       --checkpoint-dir <d>    spill: directory the checkpoints are committed to
//!       --resume <d>     spill: continue from the last checkpoint in <d>
//!       --csc-repair     repair CSC violations by state-signal insertion
//!       --no-verify      skip speed-independence verification
//!       --record <f>     also write a machine-readable snapshot (JSON)
//!       --json|--csv     emit JSON / CSV instead of the markdown table
//!   -v, --verbose        report elaboration-cache statistics to stderr
//!
//! bench compare options:
//!       simap bench compare <old.json> <new.json> [--max-regress <pct>]
//!       exits 1 when any benchmark's states/s regressed by more than
//!       <pct> percent (default 25) beyond the noise floor
//!
//! gen options:
//!       --seed <n>       corpus seed (default 0); a fixed seed gives
//!                        byte-identical specs on every machine
//!       --count <n>      how many specs to produce (default 1)
//!       --out-dir <d>    write one `<name>.g` file per spec into <d>
//!                        (created if missing); default: print to stdout
//!
//! serve options:
//!       --addr <a>       address to bind (default 127.0.0.1:7317)
//!   -j, --jobs <n>       synthesis worker threads (default: CPU count)
//!       --queue-limit <n> bounded job queue; full => 429 (default 64)
//!       --api-keys <f>   TSV keyfile (key<TAB>client<TAB>tier); without
//!                        it every caller is one anonymous client
//!       --rate-limit <r> base requests/sec per client (default 0 = off)
//!       --max-inflight <n> base in-flight jobs per client (default 0 = off)
//!       --cache-dir <d>  persistent result cache directory (default: off)
//!       --cache-limit <n> max cached results before LRU eviction (default 256)
//!       --breaker-threshold <n> worker failures in 10s that open the
//!                        circuit breaker (default 8; 0 disables)
//!       --breaker-cooldown <s> seconds the breaker stays open before a
//!                        half-open probe (default 5)
//! ```
//!
//! `simap serve` hosts the same flow as a long-running HTTP/1.1 service
//! over one shared engine (warm elaboration cache across clients); see
//! the `simap_serve` crate docs for the wire protocol and the gateway
//! layers (auth, rate limiting, circuit breaker, result cache). It shuts
//! down gracefully — draining accepted jobs — on SIGTERM or ctrl-c, and
//! reloads the API keyfile in place on SIGHUP.
//!
//! Unknown flags and flags missing their value are rejected with an
//! error (exit code 1) instead of being silently ignored.

use simap::core::{benchmarks_json, dossier, report_json, to_csv, to_json, to_markdown};
use simap::netlist::to_verilog;
use simap::sg::DotOptions;
use simap::{Config, Engine, StderrObserver, Synthesis};
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("map") => map(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("gen") => gen(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => {
            eprintln!("usage: simap <check|map|bench|gen|serve> ...   (see --help in the README)");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// One accepted flag of a subcommand.
struct FlagSpec {
    /// Canonical name (`--limit`).
    name: &'static str,
    /// Optional short alias (`-l`).
    alias: Option<&'static str>,
    /// Whether the flag consumes the following argument as its value.
    takes_value: bool,
}

const fn flag(name: &'static str) -> FlagSpec {
    FlagSpec { name, alias: None, takes_value: false }
}

const fn valued(name: &'static str) -> FlagSpec {
    FlagSpec { name, alias: None, takes_value: true }
}

const fn aliased(mut spec: FlagSpec, alias: &'static str) -> FlagSpec {
    spec.alias = Some(alias);
    spec
}

/// Strictly parsed arguments of one subcommand: every flag was declared,
/// every valued flag has its value.
struct Parsed {
    positionals: Vec<String>,
    flags: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
}

impl Parsed {
    fn has(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        // Last occurrence wins, matching common CLI conventions.
        self.values.iter().rev().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }
}

/// Parses `args` against the accepted `specs`.
///
/// # Errors
/// An unknown flag, or a valued flag with no following argument.
fn parse_flags(args: &[String], specs: &[FlagSpec]) -> Result<Parsed, String> {
    let mut parsed = Parsed { positionals: Vec::new(), flags: Vec::new(), values: Vec::new() };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if !arg.starts_with('-') || arg == "-" {
            parsed.positionals.push(arg.clone());
            continue;
        }
        let spec = specs
            .iter()
            .find(|s| s.name == arg || s.alias == Some(arg.as_str()))
            .ok_or_else(|| format!("unknown flag `{arg}`"))?;
        if spec.takes_value {
            let value = iter.next().ok_or_else(|| format!("flag `{arg}` requires a value"))?;
            parsed.values.push((spec.name, value.clone()));
        } else {
            parsed.flags.push(spec.name);
        }
    }
    Ok(parsed)
}

/// Builds a [`Synthesis`] from the parsed source arguments: `--bench
/// <name>` takes precedence; otherwise the first positional argument is a
/// `.g` file path.
fn synthesis(parsed: &Parsed) -> Result<Synthesis, Box<dyn Error>> {
    if let Some(name) = parsed.value("--bench") {
        return Ok(Synthesis::from_benchmark(name));
    }
    let Some(path) = parsed.positionals.first() else {
        return Err("no specification given (pass a .g file or --bench <name>)".into());
    };
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Ok(Synthesis::from_g_source(source))
}

/// Parses a byte-size value: a plain integer (bytes) optionally suffixed
/// with `K`/`KiB`, `M`/`MiB` or `G`/`GiB` (binary multiples; `KB`-style
/// decimal suffixes are accepted as their binary cousins for
/// forgiveness, since a memory *budget* is a bound, not a measurement).
fn parse_bytes(spec: &str) -> Result<usize, String> {
    let s = spec.trim();
    let split = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let (digits, suffix) = s.split_at(split);
    let value: usize =
        digits.parse().map_err(|_| format!("bad byte size `{spec}`: expected digits"))?;
    let shift = match suffix.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 0,
        "k" | "kb" | "kib" => 10,
        "m" | "mb" | "mib" => 20,
        "g" | "gb" | "gib" => 30,
        other => return Err(format!("bad byte size `{spec}`: unknown suffix `{other}`")),
    };
    value.checked_shl(shift).ok_or_else(|| format!("byte size `{spec}` overflows"))
}

/// Applies the shared engine flags (`--strategy`, `--reach-jobs`,
/// `--materialize-limit`, the spill knobs `--memory-budget`,
/// `--spill-dir`, `--shards`, the checkpoint knobs
/// `--checkpoint-every`, `--checkpoint-dir`, `--resume`, and the
/// per-signal synthesis fan-out `--synth-jobs`) to a configuration
/// builder. `--resume` implies the spill strategy (and refuses an
/// explicit conflicting `--strategy`).
fn reach_flags(
    parsed: &Parsed,
    mut builder: simap::ConfigBuilder,
) -> Result<simap::ConfigBuilder, Box<dyn Error>> {
    if let Some(strategy) = parsed.value("--strategy") {
        builder = builder.reach_strategy(strategy.parse::<simap::ReachStrategy>()?);
    }
    if let Some(jobs) = parsed.value("--reach-jobs") {
        builder = builder.reach_jobs(jobs.parse()?);
    }
    if let Some(jobs) = parsed.value("--synth-jobs") {
        builder = builder.synth_jobs(jobs.parse()?);
    }
    if let Some(limit) = parsed.value("--materialize-limit") {
        builder = builder.reach_materialize_limit(limit.parse()?);
    }
    if let Some(budget) = parsed.value("--memory-budget") {
        builder = builder.reach_memory_budget(parse_bytes(budget)?);
    }
    if let Some(dir) = parsed.value("--spill-dir") {
        builder = builder.reach_spill_dir(Some(std::path::PathBuf::from(dir)));
    }
    if let Some(shards) = parsed.value("--shards") {
        builder = builder.reach_shards(shards.parse()?);
    }
    if let Some(every) = parsed.value("--checkpoint-every") {
        builder = builder.reach_checkpoint_every(every.parse()?);
    }
    if let Some(dir) = parsed.value("--checkpoint-dir") {
        builder = builder.reach_checkpoint_dir(Some(std::path::PathBuf::from(dir)));
    }
    if let Some(dir) = parsed.value("--resume") {
        if parsed.value("--strategy").is_some_and(|s| s != "spill") {
            return Err(
                "--resume requires the spill strategy (omit --strategy or pass `spill`)".into()
            );
        }
        builder = builder
            .reach_strategy(simap::ReachStrategy::Spill)
            .reach_resume(Some(std::path::PathBuf::from(dir)));
    }
    Ok(builder)
}

fn check(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[
            valued("--bench"),
            valued("--strategy"),
            valued("--reach-jobs"),
            valued("--synth-jobs"),
            valued("--materialize-limit"),
            valued("--memory-budget"),
            valued("--spill-dir"),
            valued("--shards"),
            valued("--checkpoint-every"),
            valued("--checkpoint-dir"),
            valued("--resume"),
        ],
    )?;
    let config = reach_flags(&parsed, Config::builder())?.build()?;
    let elaborated = synthesis(&parsed)?.config(&config).elaborate()?;
    let sg = elaborated.state_graph();
    let report = elaborated.properties();
    println!("{}: {} signals, {} states", sg.name(), sg.signal_count(), sg.state_count());
    if let Some(stats) = elaborated.reach_stats() {
        println!(
            "  elaboration: {} markings visited, {} interned, {} edges ({})",
            stats.visited, stats.interned, stats.edges, stats.strategy
        );
        if let Some(spill) = stats.spill {
            println!(
                "  spill: {} bytes spilled, {} files, resident peak {} of {} budget, {} shards",
                spill.spilled_bytes,
                spill.files_created,
                spill.resident_peak,
                spill.budget,
                spill.shards
            );
            if spill.checkpoints_written > 0 || spill.resume_level > 0 {
                println!(
                    "  checkpoint: {} snapshots written, {} bytes, resumed from level {}",
                    spill.checkpoints_written, spill.checkpoint_bytes, spill.resume_level
                );
            }
        }
    }
    println!("  speed-independent: {}", report.is_speed_independent());
    println!("  complete state coding: {}", report.has_csc());
    for v in report.violations.iter().take(10) {
        println!("  violation: {v}");
    }
    Ok(if report.is_ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn map(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[
            aliased(valued("--limit"), "-l"),
            valued("--or-limit"),
            valued("--verilog"),
            valued("--dot"),
            valued("--bench"),
            valued("--strategy"),
            valued("--reach-jobs"),
            valued("--synth-jobs"),
            valued("--materialize-limit"),
            valued("--memory-budget"),
            valued("--spill-dir"),
            valued("--shards"),
            valued("--checkpoint-every"),
            valued("--checkpoint-dir"),
            valued("--resume"),
            flag("--csc-repair"),
            flag("--no-verify"),
            flag("--json"),
            aliased(flag("--verbose"), "-v"),
        ],
    )?;

    let mut builder = reach_flags(
        &parsed,
        Config::builder().repair_csc(parsed.has("--csc-repair")).verify(!parsed.has("--no-verify")),
    )?;
    if let Some(limit) = parsed.value("--limit") {
        builder = builder.literal_limit(limit.parse()?);
    }
    if let Some(limit) = parsed.value("--or-limit") {
        builder = builder.or_limit(limit.parse()?);
    }
    let config = builder.build()?;

    let mut synthesis = synthesis(&parsed)?.config(&config);
    if parsed.has("--verbose") {
        synthesis = synthesis.observer(StderrObserver);
    }

    // Drive the stages explicitly so the mapped netlist is available for
    // the exporters without rebuilding it. Refutation is reported in the
    // dossier (`verified: Some(false)`), not raised as an error, so the
    // netlist exports below still run — matching the historical CLI.
    let mapped = synthesis.elaborate()?.covers()?.decompose()?.map();
    let verified = if config.verify() { mapped.verify_compat() } else { mapped.skip_verify() };
    let report = verified.report();
    let json = parsed.has("--json");
    if json {
        println!("{}", report_json(report));
    } else {
        print!("{}", dossier(report));
    }
    // In JSON mode stdout carries exactly one JSON document; export
    // confirmations move to stderr so `--json --verilog f` stays parseable.
    let confirm = |path: &str| {
        if json {
            eprintln!("wrote {path}");
        } else {
            println!("wrote {path}");
        }
    };

    if let Some(path) = parsed.value("--verilog") {
        let module = report.name.clone();
        std::fs::write(path, to_verilog(verified.circuit(), &report.outcome.sg, &module))?;
        confirm(path);
    }
    if let Some(path) = parsed.value("--dot") {
        std::fs::write(
            path,
            simap::sg::to_dot(
                &report.outcome.sg,
                &DotOptions { show_codes: true, ..Default::default() },
            ),
        )?;
        confirm(path);
    }
    Ok(if report.inserted.is_some() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn bench(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("list") => {
            let parsed = parse_flags(&args[1..], &[flag("--json")])?;
            let engine = Engine::default();
            if parsed.has("--json") {
                // The same machine-readable listing `simap serve` answers
                // on GET /benchmarks (byte-identical by construction).
                println!("{}", benchmarks_json(&engine)?);
                return Ok(ExitCode::SUCCESS);
            }
            for name in engine.registry().names() {
                let sg = engine.benchmark(*name).elaborate()?;
                let sg = sg.state_graph();
                println!("{name:15} {:2} signals {:5} states", sg.signal_count(), sg.state_count());
            }
            Ok(ExitCode::SUCCESS)
        }
        Some("run") => bench_run(&args[1..]),
        Some("compare") => bench_compare(&args[1..]),
        _ => {
            eprintln!("usage: simap bench <list|run|compare> ...");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `simap gen`: emits `--count` specs of the seeded pattern-composition
/// corpus (`simap::stg::patterns::corpus`). The specs are a pure function
/// of `--seed`, so a fixed seed reproduces the same bytes on any machine
/// — the property the fuzz suite and serve load tests lean on. With
/// `--out-dir` each spec lands in its own `<name>.g` file; otherwise the
/// specs stream to stdout back to back (each is self-delimiting via its
/// `.end` line).
fn gen(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(args, &[valued("--seed"), valued("--count"), valued("--out-dir")])?;
    if let Some(p) = parsed.positionals.first() {
        return Err(format!("unexpected argument `{p}` (gen takes only flags)").into());
    }
    let seed: u64 = parsed.value("--seed").map(str::parse).transpose()?.unwrap_or(0);
    let count: usize = parsed.value("--count").map(str::parse).transpose()?.unwrap_or(1);
    let out_dir = parsed.value("--out-dir");
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    }
    let mut stdout = String::new();
    for stg in simap::stg::patterns::corpus(seed, count) {
        let text = simap::stg::write_g(&stg);
        match out_dir {
            Some(dir) => {
                let path = std::path::Path::new(dir).join(format!("{}.g", stg.name()));
                std::fs::write(&path, &text)
                    .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
            }
            None => stdout.push_str(&text),
        }
    }
    print!("{stdout}");
    Ok(ExitCode::SUCCESS)
}

/// One HTTP/1.1 request against the in-process snapshot server.
fn bench_http(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), Box<dyn Error>> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("no status line in {response:?}"))?;
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

/// Measures an in-process `simap serve` instance for the snapshot's
/// `serve` section: one timed cold pass over the benchmarks fills the
/// result cache and the stage histograms, then a timed warm pass (every
/// request a cache hit) yields the gateway's warm-cache throughput —
/// the cold-vs-warm throughput ratio is recorded as `warm_speedup`.
/// Per-stage latency percentiles are read back from the very `/metrics`
/// histograms operators would scrape: a percentile is the upper bound
/// of the first power-of-two bucket whose cumulative count reaches it.
fn serve_snapshot(names: &[String]) -> Result<String, Box<dyn Error>> {
    use std::fmt::Write as _;
    let cache_dir = std::env::temp_dir().join(format!("simap-bench-cache-{}", std::process::id()));
    let server = simap::serve::Server::bind(simap::serve::ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        cache_dir: Some(cache_dir.clone()),
        ..simap::serve::ServeConfig::default()
    })?;
    let handle = server.handle();
    let addr = server.local_addr();
    let join = std::thread::spawn(move || server.run());

    let result = (|| -> Result<String, Box<dyn Error>> {
        let cold_start = std::time::Instant::now();
        for name in names {
            let body = format!("{{\"bench\":\"{name}\"}}");
            let (status, response) = bench_http(addr, "POST", "/synthesize", &body)?;
            if status != 200 {
                return Err(format!("cold /synthesize for `{name}`: {status} {response}").into());
            }
        }
        let cold_requests = names.len();
        let cold_rps = cold_requests as f64 / cold_start.elapsed().as_secs_f64().max(1e-9);
        const WARM_ROUNDS: usize = 5;
        let start = std::time::Instant::now();
        for _ in 0..WARM_ROUNDS {
            for name in names {
                let body = format!("{{\"bench\":\"{name}\"}}");
                let (status, _) = bench_http(addr, "POST", "/synthesize", &body)?;
                if status != 200 {
                    return Err(format!("warm /synthesize for `{name}`: {status}").into());
                }
            }
        }
        let warm_requests = WARM_ROUNDS * names.len();
        let warm_rps = warm_requests as f64 / start.elapsed().as_secs_f64().max(1e-9);

        let (status, metrics) = bench_http(addr, "GET", "/metrics", "")?;
        if status != 200 {
            return Err(format!("/metrics: {status}").into());
        }
        let doc = simap::core::json::parse(metrics.trim_end())?;
        let hits = doc
            .get("gateway")
            .and_then(|g| g.get("rescache"))
            .and_then(|c| c.get("hits"))
            .and_then(simap::core::json::Json::as_usize)
            .unwrap_or(0);
        let mut out = format!(
            "{{\"cold_requests\":{cold_requests},\"cold_rps\":{cold_rps:.1},\
             \"warm_requests\":{warm_requests},\"warm_cache_hits\":{hits},\
             \"warm_rps\":{warm_rps:.1},\"warm_speedup\":{:.1},\
             \"stage_percentiles_us\":{{",
            warm_rps / cold_rps.max(1e-9)
        );
        let stages = doc.get("stage_latency_us").ok_or("metrics has no stage_latency_us")?;
        let mut first = true;
        for stage in ["configure", "load", "elaborate", "covers", "decompose", "map", "verify"] {
            let Some(hist) = stages.get(stage) else { continue };
            let buckets: Vec<(u64, u64)> = hist
                .get("histogram")
                .and_then(|h| h.as_array())
                .map(|rows| {
                    rows.iter()
                        .filter_map(|row| {
                            let pair = row.as_array()?;
                            let bound = pair.first()?.as_usize()? as u64;
                            let count = pair.get(1)?.as_usize()? as u64;
                            Some((bound, count))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let total: u64 = buckets.iter().map(|(_, n)| n).sum();
            if total == 0 {
                continue;
            }
            let percentile = |q: f64| -> u64 {
                let target = (q * total as f64).ceil().max(1.0) as u64;
                let mut seen = 0;
                for &(bound, count) in &buckets {
                    seen += count;
                    if seen >= target {
                        return bound;
                    }
                }
                buckets.last().map_or(0, |&(bound, _)| bound)
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{stage}\":{{\"p50\":{},\"p90\":{},\"p99\":{}}}",
                percentile(0.50),
                percentile(0.90),
                percentile(0.99)
            );
        }
        out.push_str("}}");
        Ok(out)
    })();

    handle.shutdown();
    let _ = join.join();
    let _ = std::fs::remove_dir_all(&cache_dir);
    result
}

/// Records a machine-readable performance snapshot to `path`: for each
/// benchmark, the state/arc counts plus elaboration wall-clock per
/// reachability strategy and the full mapping flow's wall-clock, then
/// the spill-engine measurements of [`spill_snapshot`], the fan-out
/// measurements of [`synthesis_snapshot`], the batch engine's
/// elaboration-cache statistics, and the gateway measurements of
/// [`serve_snapshot`]. The schema is stable so
/// snapshots from different commits diff cleanly (`simap bench
/// compare`); the timings themselves are machine- and load-dependent.
fn record_snapshot(
    path: &str,
    names: &[String],
    config: &Config,
    cache: simap::CacheStats,
) -> Result<(), Box<dyn Error>> {
    use std::fmt::Write as _;
    use std::time::Instant;
    let strategies = [
        simap::ReachStrategy::Explicit,
        simap::ReachStrategy::Packed,
        simap::ReachStrategy::Symbolic,
        simap::ReachStrategy::Spill,
    ];
    let mut out = String::from("{\"version\":1,\"benchmarks\":[");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut states = 0;
        let mut arcs = 0;
        let _ = write!(out, "{{\"name\":\"{name}\",\"elaborate_us\":{{");
        for (j, strategy) in strategies.iter().enumerate() {
            let config = config.to_builder().reach_strategy(*strategy).build()?;
            let start = Instant::now();
            let elaborated = Synthesis::from_benchmark(name).config(&config).elaborate()?;
            let elapsed = start.elapsed().as_micros();
            let sg = elaborated.state_graph();
            states = sg.state_count();
            arcs = sg.arc_count();
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{strategy}\":{elapsed}");
        }
        let start = Instant::now();
        let _ = Synthesis::from_benchmark(name)
            .config(config)
            .elaborate()?
            .covers()?
            .decompose()?
            .map();
        let map_us = start.elapsed().as_micros();
        let _ = write!(out, "}},\"map_us\":{map_us},\"states\":{states},\"arcs\":{arcs}}}");
    }
    let _ = write!(out, "],\"spill\":{}", spill_snapshot(names, config)?);
    let _ = write!(out, ",\"synthesis\":{}", synthesis_snapshot(names, config)?);
    let _ = write!(
        out,
        ",\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{},\"evicted\":{}}}",
        cache.hits, cache.misses, cache.entries, cache.evicted
    );
    let _ = writeln!(out, ",\"serve\":{}}}", serve_snapshot(names)?);
    std::fs::write(path, out)?;
    Ok(())
}

/// Measures the snapshot's `spill` section: per benchmark, the
/// external-memory engine's frontier-expansion wall-clock at
/// `reach jobs = 1` versus the recorded fan-out (`--reach-jobs`, floor
/// 4), plus the same single-job run writing a checkpoint at every BFS
/// level — comparing `checkpoint_us` against `frontier_us.j1` isolates
/// the checkpoint write overhead at the densest possible cadence.
fn spill_snapshot(names: &[String], config: &Config) -> Result<String, Box<dyn Error>> {
    use std::fmt::Write as _;
    use std::time::Instant;
    let fanout = config.reach_config().jobs.max(4);
    let ckpt_dir = std::env::temp_dir().join(format!("simap-bench-ckpt-{}", std::process::id()));
    let mut out = format!("{{\"jobs\":{fanout},\"benchmarks\":[");
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let timed = |jobs: usize, checkpoint_every: usize| -> Result<u128, Box<dyn Error>> {
            let mut builder =
                config.to_builder().reach_strategy(simap::ReachStrategy::Spill).reach_jobs(jobs);
            if checkpoint_every > 0 {
                builder = builder
                    .reach_checkpoint_every(checkpoint_every)
                    .reach_checkpoint_dir(Some(ckpt_dir.clone()));
            }
            let config = builder.build()?;
            let start = Instant::now();
            let _ = Synthesis::from_benchmark(name).config(&config).elaborate()?;
            Ok(start.elapsed().as_micros())
        };
        let j1 = timed(1, 0)?;
        let jn = timed(fanout, 0)?;
        let checkpoint_us = timed(1, 1)?;
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"frontier_us\":{{\"j1\":{j1},\"jn\":{jn}}},\
             \"checkpoint_us\":{checkpoint_us}}}"
        );
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    out.push_str("]}");
    Ok(out)
}

/// Measures the snapshot's `synthesis` section: per benchmark, the
/// wall-clock of the Covers/Decompose/Map stages at `synth_jobs = 1`
/// versus the recorded fan-out (`--synth-jobs`, floor 4), verifying on
/// the way that both runs produce byte-identical JSON reports. The
/// section closes with the BDD manager counters of a representative
/// symbolic workload — every final cover of the suite built into one
/// manager under a garbage-collection watermark, then sifted — so node
/// pressure, GC activity and reordering effort are tracked per commit.
fn synthesis_snapshot(names: &[String], config: &Config) -> Result<String, Box<dyn Error>> {
    use std::fmt::Write as _;
    use std::time::Instant;
    let fanout = config.synth_jobs().max(4);
    let mut out = format!("{{\"jobs\":{fanout},\"benchmarks\":[");
    let mut suite_covers: Vec<simap::boolean::Cover> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let timed = |jobs: usize| -> Result<
            (u128, u128, u128, simap::core::flow::FlowReport),
            Box<dyn Error>,
        > {
            let config = config.to_builder().synth_jobs(jobs).build()?;
            let elaborated = Synthesis::from_benchmark(name).config(&config).elaborate()?;
            let start = Instant::now();
            let covers = elaborated.covers()?;
            let covers_us = start.elapsed().as_micros();
            let start = Instant::now();
            let decomposed = covers.decompose()?;
            let decompose_us = start.elapsed().as_micros();
            let start = Instant::now();
            let mapped = decomposed.map();
            let map_us = start.elapsed().as_micros();
            Ok((covers_us, decompose_us, map_us, mapped.skip_verify().into_report()))
        };
        let (c1, d1, m1, sequential) = timed(1)?;
        let (cn, dn, mn, fanned) = timed(fanout)?;
        if report_json(&sequential) != report_json(&fanned) {
            return Err(
                format!("`{name}`: synth_jobs={fanout} report differs from sequential").into()
            );
        }
        for signal in &fanned.outcome.mc.signals {
            match &signal.body {
                simap::core::mc::SignalBody::Combinational { cover, .. } => {
                    suite_covers.push(cover.clone());
                }
                simap::core::mc::SignalBody::StandardC { set, reset } => {
                    for rc in set.iter().chain(reset.iter()) {
                        suite_covers.push(rc.cover.clone());
                    }
                }
            }
        }
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\
             \"covers_us\":{{\"j1\":{c1},\"jn\":{cn}}},\
             \"decompose_us\":{{\"j1\":{d1},\"jn\":{dn}}},\
             \"map_us\":{{\"j1\":{m1},\"jn\":{mn}}}}}"
        );
    }
    let mut bdd = simap::boolean::Bdd::new();
    bdd.set_gc_watermark(Some(1 << 14));
    let mut roots = Vec::new();
    for cover in &suite_covers {
        let f = bdd.from_cover(cover);
        bdd.protect(f);
        roots.push(f);
    }
    bdd.sift(&roots);
    let stats = bdd.stats();
    let _ = write!(
        out,
        "],\"bdd\":{{\"live_nodes\":{},\"peak_nodes\":{},\"gc_runs\":{},\
         \"collected_nodes\":{},\"reorders\":{},\"level_swaps\":{}}}}}",
        stats.live_nodes,
        stats.peak_nodes,
        stats.gc_runs,
        stats.collected_nodes,
        stats.reorders,
        stats.level_swaps
    );
    Ok(out)
}

/// Absolute noise floor for `bench compare`: wall-clock deltas under
/// this many microseconds are never regressions, whatever the ratio —
/// tiny benchmarks elaborate in tens of microseconds, where scheduler
/// jitter alone exceeds any percentage gate.
const COMPARE_NOISE_FLOOR_US: u64 = 20_000;

/// Compares two `bench run --record` snapshots; exits 1 when any shared
/// timing regressed by more than `--max-regress` percent (default 25)
/// beyond the noise floor. Gated timings: per-benchmark elaboration (all
/// four strategies) and mapping, the spill engine's frontier fan-out and
/// checkpoint overhead, the synthesis stages at `j1` and `jN`, the
/// gateway's per-stage latency percentiles, and the gateway's warm-cache
/// throughput (higher is better — gated as per-request latency).
/// Sections absent from either snapshot are skipped, so old snapshots
/// stay comparable.
fn bench_compare(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(args, &[valued("--max-regress")])?;
    let [old_path, new_path] = parsed.positionals.as_slice() else {
        return Err("usage: simap bench compare <old.json> <new.json> [--max-regress <pct>]".into());
    };
    let max_regress: f64 =
        parsed.value("--max-regress").map(str::parse).transpose()?.unwrap_or(25.0);
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
    };
    let old = simap::core::json::parse(&read(old_path)?)?;
    let new = simap::core::json::parse(&read(new_path)?)?;
    let benches = |doc: &simap::core::json::Json| -> Result<Vec<simap::core::json::Json>, String> {
        doc.get("benchmarks")
            .and_then(|b| b.as_array().map(<[_]>::to_vec))
            .ok_or_else(|| "snapshot has no `benchmarks` array".to_string())
    };
    let name_of = |b: &simap::core::json::Json| {
        b.get("name").and_then(|n| n.as_str().map(str::to_string)).unwrap_or_default()
    };
    let old_benches = benches(&old)?;
    let mut regressions = 0u32;
    let mut compared = 0u32;
    let mut check = |label: String, old_us: u64, new_us: u64| {
        compared += 1;
        let delta = new_us.saturating_sub(old_us);
        let pct = if old_us == 0 { 0.0 } else { delta as f64 * 100.0 / old_us as f64 };
        if pct > max_regress && delta > COMPARE_NOISE_FLOOR_US {
            regressions += 1;
            println!("REGRESSION {label}: {old_us}us -> {new_us}us (+{pct:.0}%)");
        }
    };
    let lookup_us = |doc: &simap::core::json::Json, keys: &[&str]| -> Option<u64> {
        let mut node = doc;
        for key in keys {
            node = node.get(key)?;
        }
        node.as_usize().map(|v| v as u64)
    };
    for bench in benches(&new)? {
        let name = name_of(&bench);
        let Some(old_bench) = old_benches.iter().find(|b| name_of(b) == name) else {
            println!("note: `{name}` is new, nothing to compare against");
            continue;
        };
        for strategy in ["explicit", "packed", "symbolic", "spill"] {
            if let (Some(o), Some(n)) = (
                lookup_us(old_bench, &["elaborate_us", strategy]),
                lookup_us(&bench, &["elaborate_us", strategy]),
            ) {
                check(format!("{name} elaborate[{strategy}]"), o, n);
            }
        }
        if let (Some(o), Some(n)) =
            (lookup_us(old_bench, &["map_us"]), lookup_us(&bench, &["map_us"]))
        {
            check(format!("{name} map"), o, n);
        }
    }
    // Section-level benchmark lists (`spill`, `synthesis`); empty when a
    // snapshot predates the section.
    let section_benches = |doc: &simap::core::json::Json, section: &str| {
        doc.get(section)
            .and_then(|s| s.get("benchmarks"))
            .and_then(|b| b.as_array().map(<[_]>::to_vec))
            .unwrap_or_default()
    };
    let old_spill = section_benches(&old, "spill");
    for bench in section_benches(&new, "spill") {
        let name = name_of(&bench);
        let Some(old_bench) = old_spill.iter().find(|b| name_of(b) == name) else { continue };
        for (label, keys) in [
            ("frontier[j1]", &["frontier_us", "j1"][..]),
            ("frontier[jn]", &["frontier_us", "jn"][..]),
            ("checkpoint", &["checkpoint_us"][..]),
        ] {
            if let (Some(o), Some(n)) = (lookup_us(old_bench, keys), lookup_us(&bench, keys)) {
                check(format!("{name} spill {label}"), o, n);
            }
        }
    }
    let old_synth = section_benches(&old, "synthesis");
    for bench in section_benches(&new, "synthesis") {
        let name = name_of(&bench);
        let Some(old_bench) = old_synth.iter().find(|b| name_of(b) == name) else { continue };
        for stage in ["covers_us", "decompose_us", "map_us"] {
            for jobs in ["j1", "jn"] {
                if let (Some(o), Some(n)) =
                    (lookup_us(old_bench, &[stage, jobs]), lookup_us(&bench, &[stage, jobs]))
                {
                    check(format!("{name} synthesis {stage}[{jobs}]"), o, n);
                }
            }
        }
    }
    if let (Some(old_serve), Some(new_serve)) = (old.get("serve"), new.get("serve")) {
        for stage in ["configure", "load", "elaborate", "covers", "decompose", "map", "verify"] {
            for q in ["p50", "p90", "p99"] {
                if let (Some(o), Some(n)) = (
                    lookup_us(old_serve, &["stage_percentiles_us", stage, q]),
                    lookup_us(new_serve, &["stage_percentiles_us", stage, q]),
                ) {
                    check(format!("serve {stage}[{q}]"), o, n);
                }
            }
        }
        // Throughput is higher-is-better: gate the equivalent per-request
        // latency so the noise floor applies in the same unit.
        let rps = |doc: &simap::core::json::Json, key: &str| -> Option<f64> {
            match doc.get(key)? {
                simap::core::json::Json::Int(n) => Some(*n as f64),
                simap::core::json::Json::Float(f) => Some(*f),
                _ => None,
            }
        };
        if let (Some(o), Some(n)) = (rps(old_serve, "warm_rps"), rps(new_serve, "warm_rps")) {
            if o > 0.0 && n > 0.0 {
                check(
                    "serve warm_rps (as us/request)".to_string(),
                    (1e6 / o) as u64,
                    (1e6 / n) as u64,
                );
            }
        }
    }
    println!(
        "compared {compared} timings, {regressions} regressions \
         (gate: >{max_regress}% and >{COMPARE_NOISE_FLOOR_US}us)"
    );
    Ok(if regressions == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn bench_run(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[
            valued("--limits"),
            aliased(valued("--jobs"), "-j"),
            valued("--strategy"),
            valued("--reach-jobs"),
            valued("--synth-jobs"),
            valued("--materialize-limit"),
            valued("--memory-budget"),
            valued("--spill-dir"),
            valued("--shards"),
            valued("--checkpoint-every"),
            valued("--checkpoint-dir"),
            valued("--resume"),
            valued("--record"),
            flag("--csc-repair"),
            flag("--no-verify"),
            flag("--json"),
            flag("--csv"),
            aliased(flag("--verbose"), "-v"),
        ],
    )?;

    let limits: Vec<usize> = match parsed.value("--limits") {
        Some(spec) => spec
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|e| format!("bad --limits `{spec}`: {e}"))?,
        None => vec![2],
    };
    if limits.is_empty() {
        return Err("--limits needs at least one limit".into());
    }
    let jobs: usize = parsed.value("--jobs").map(str::parse).transpose()?.unwrap_or(1);

    let config = reach_flags(
        &parsed,
        Config::builder().repair_csc(parsed.has("--csc-repair")).verify(!parsed.has("--no-verify")),
    )?
    .build()?;
    let engine = Engine::new(config.clone());

    let batch = if parsed.positionals.is_empty() {
        engine.batch_all()
    } else {
        engine.batch(parsed.positionals.iter().cloned())
    };
    let rows = batch.limits(limits.clone()).jobs(jobs).run()?;

    if parsed.has("--json") {
        println!("{}", to_json(&limits, &rows));
    } else if parsed.has("--csv") {
        print!("{}", to_csv(&limits, &rows));
    } else {
        print!("{}", to_markdown(&limits, &rows));
    }
    if parsed.has("--verbose") {
        let stats = engine.cache_stats();
        eprintln!(
            "elaboration cache: {} hits, {} misses, {} entries, {} evicted",
            stats.hits, stats.misses, stats.entries, stats.evicted
        );
    }
    if let Some(path) = parsed.value("--record") {
        let names: Vec<String> = if parsed.positionals.is_empty() {
            engine.registry().names().iter().map(|n| n.to_string()).collect()
        } else {
            parsed.positionals.clone()
        };
        record_snapshot(path, &names, &config, engine.cache_stats())?;
        eprintln!("recorded {path}");
    }
    Ok(ExitCode::SUCCESS)
}

fn serve(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let parsed = parse_flags(
        args,
        &[
            valued("--addr"),
            aliased(valued("--jobs"), "-j"),
            valued("--queue-limit"),
            valued("--api-keys"),
            valued("--rate-limit"),
            valued("--max-inflight"),
            valued("--cache-dir"),
            valued("--cache-limit"),
            valued("--breaker-threshold"),
            valued("--breaker-cooldown"),
        ],
    )?;
    if let Some(extra) = parsed.positionals.first() {
        return Err(format!("serve takes no positional argument (got `{extra}`)").into());
    }
    // Flags override the library defaults; anything not given keeps
    // `ServeConfig::default()` so the CLI and library never diverge.
    let defaults = simap::serve::ServeConfig::default();
    let config = simap::serve::ServeConfig {
        addr: parsed.value("--addr").map(str::to_string).unwrap_or(defaults.addr),
        jobs: parsed.value("--jobs").map(str::parse).transpose()?.unwrap_or(defaults.jobs),
        queue_limit: parsed
            .value("--queue-limit")
            .map(str::parse)
            .transpose()?
            .unwrap_or(defaults.queue_limit),
        api_keys: parsed.value("--api-keys").map(std::path::PathBuf::from),
        rate_limit: parsed
            .value("--rate-limit")
            .map(str::parse)
            .transpose()?
            .unwrap_or(defaults.rate_limit),
        max_inflight: parsed
            .value("--max-inflight")
            .map(str::parse)
            .transpose()?
            .unwrap_or(defaults.max_inflight),
        cache_dir: parsed.value("--cache-dir").map(std::path::PathBuf::from),
        cache_limit: parsed
            .value("--cache-limit")
            .map(str::parse)
            .transpose()?
            .unwrap_or(defaults.cache_limit),
        breaker_threshold: parsed
            .value("--breaker-threshold")
            .map(str::parse)
            .transpose()?
            .unwrap_or(defaults.breaker_threshold),
        breaker_cooldown: parsed
            .value("--breaker-cooldown")
            .map(|s| s.parse::<u64>().map(std::time::Duration::from_secs))
            .transpose()?
            .unwrap_or(defaults.breaker_cooldown),
        job_expiry: defaults.job_expiry,
        config: defaults.config,
    };
    let server = simap::serve::Server::bind(config)?;
    let handle = server.handle();
    eprintln!("simap serve: listening on http://{}", server.local_addr());

    // Signal handling: the handler only latches a flag (the only
    // async-signal-safe option); this watcher turns the latches into
    // actions — SIGHUP re-reads the API keyfile in place, SIGINT/SIGTERM
    // drain gracefully. It also exits if the server stops some other way.
    simap::serve::shutdown_signal::install();
    let watcher = std::thread::spawn({
        let handle = handle.clone();
        move || {
            while !simap::serve::shutdown_signal::requested() && !handle.is_shutdown() {
                if simap::serve::shutdown_signal::reload_requested() {
                    match handle.reload_api_keys() {
                        Ok(n) => eprintln!("simap serve: reloaded API keys ({n} entries)"),
                        Err(e) => eprintln!("simap serve: keyfile reload failed: {e}"),
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            handle.shutdown();
        }
    });
    server.run()?;
    let _ = watcher.join();
    eprintln!("simap serve: drained and shut down cleanly");
    Ok(ExitCode::SUCCESS)
}
