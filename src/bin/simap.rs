//! `simap` — command-line front-end to the speed-independent technology
//! mapper.
//!
//! ```text
//! simap check <spec.g>                 verify the specification's properties
//! simap map   <spec.g> [options]      run the full mapping flow
//! simap bench list                     list the embedded Table 1 circuits
//!
//! map options:
//!   -l, --limit <n>      literal limit (default 2)
//!       --csc-repair     repair CSC violations by state-signal insertion
//!       --no-verify      skip the final speed-independence verification
//!       --or-limit <n>   split second-level OR gates to <= n inputs
//!   -v, --verbose        narrate stages and insertions to stderr
//!       --verilog <f>    write the mapped netlist as structural Verilog
//!       --dot <f>        write the final state graph as Graphviz dot
//!       --bench <name>   use an embedded benchmark instead of a file
//! ```

use simap::core::dossier;
use simap::netlist::to_verilog;
use simap::sg::DotOptions;
use simap::{StderrObserver, Synthesis};
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("map") => map(&args[1..]),
        Some("bench") => bench(&args[1..]),
        _ => {
            eprintln!("usage: simap <check|map|bench> ...   (see --help in the README)");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// Flags that consume the following argument as their value.
const VALUED_FLAGS: [&str; 6] = ["--limit", "-l", "--or-limit", "--verilog", "--dot", "--bench"];

/// Builds a [`Synthesis`] from the CLI's source arguments: `--bench
/// <name>` takes precedence; otherwise the first non-flag argument that
/// is not the value of a valued flag is a `.g` file path.
fn synthesis(args: &[String]) -> Result<Synthesis, Box<dyn Error>> {
    if args.iter().any(|a| a == "--bench") {
        let name = flag_value(args, "--bench").ok_or("--bench needs a name")?;
        return Ok(Synthesis::from_benchmark(name));
    }
    let mut iter = args.iter();
    let path = loop {
        let Some(arg) = iter.next() else {
            return Err("no specification given (pass a .g file or --bench <name>)".into());
        };
        if VALUED_FLAGS.contains(&arg.as_str()) {
            iter.next(); // skip the flag's value
        } else if !arg.starts_with('-') {
            break arg;
        }
    };
    Ok(Synthesis::from_g_source(std::fs::read_to_string(path)?))
}

fn check(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let elaborated = synthesis(args)?.elaborate()?;
    let sg = elaborated.state_graph();
    let report = elaborated.properties();
    println!("{}: {} signals, {} states", sg.name(), sg.signal_count(), sg.state_count());
    println!("  speed-independent: {}", report.is_speed_independent());
    println!("  complete state coding: {}", report.has_csc());
    for v in report.violations.iter().take(10) {
        println!("  violation: {v}");
    }
    Ok(if report.is_ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).map(String::as_str)
}

fn map(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let limit: usize = flag_value(args, "--limit")
        .or_else(|| flag_value(args, "-l"))
        .map(str::parse)
        .transpose()?
        .unwrap_or(2);

    let verify = !args.iter().any(|a| a == "--no-verify");
    let mut synthesis =
        synthesis(args)?.literal_limit(limit).repair_csc(args.iter().any(|a| a == "--csc-repair"));
    if let Some(n) = flag_value(args, "--or-limit") {
        synthesis = synthesis.or_limit(n.parse()?);
    }
    if args.iter().any(|a| a == "--verbose" || a == "-v") {
        synthesis = synthesis.observer(StderrObserver);
    }

    // Drive the stages explicitly so the mapped netlist is available for
    // the exporters without rebuilding it. Refutation is reported in the
    // dossier (`verified: Some(false)`), not raised as an error, so the
    // netlist exports below still run — matching the historical CLI.
    let mapped = synthesis.elaborate()?.covers()?.decompose()?.map();
    let verified = if verify { mapped.verify_compat() } else { mapped.skip_verify() };
    let report = verified.report();
    print!("{}", dossier(report));

    if let Some(path) = flag_value(args, "--verilog") {
        let module = report.name.clone();
        std::fs::write(path, to_verilog(verified.circuit(), &report.outcome.sg, &module))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--dot") {
        std::fs::write(
            path,
            simap::sg::to_dot(
                &report.outcome.sg,
                &DotOptions { show_codes: true, ..Default::default() },
            ),
        )?;
        println!("wrote {path}");
    }
    Ok(if report.inserted.is_some() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn bench(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in simap::stg::benchmark_names() {
                let sg = Synthesis::from_benchmark(*name).elaborate()?;
                let sg = sg.state_graph();
                println!("{name:15} {:2} signals {:5} states", sg.signal_count(), sg.state_count());
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => {
            eprintln!("usage: simap bench list");
            Ok(ExitCode::FAILURE)
        }
    }
}
