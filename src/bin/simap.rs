//! `simap` — command-line front-end to the speed-independent technology
//! mapper.
//!
//! ```text
//! simap check <spec.g>                 verify the specification's properties
//! simap map   <spec.g> [options]      run the full mapping flow
//! simap bench list                     list the embedded Table 1 circuits
//!
//! map options:
//!   -l, --limit <n>      literal limit (default 2)
//!       --csc-repair     repair CSC violations by state-signal insertion
//!       --no-verify      skip the final speed-independence verification
//!       --verilog <f>    write the mapped netlist as structural Verilog
//!       --dot <f>        write the final state graph as Graphviz dot
//!       --bench <name>   use an embedded benchmark instead of a file
//! ```

use simap::core::{build_circuit, dossier, run_flow, FlowConfig};
use simap::netlist::to_verilog;
use simap::sg::DotOptions;
use std::error::Error;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<ExitCode, Box<dyn Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("map") => map(&args[1..]),
        Some("bench") => bench(&args[1..]),
        _ => {
            eprintln!("usage: simap <check|map|bench> ...   (see --help in the README)");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn load(args: &[String]) -> Result<simap::sg::StateGraph, Box<dyn Error>> {
    // `--bench <name>` takes precedence; otherwise the first non-flag
    // argument is a `.g` file path.
    if let Some(pos) = args.iter().position(|a| a == "--bench") {
        let name = args.get(pos + 1).ok_or("--bench needs a name")?;
        let stg = simap::stg::benchmark(name)
            .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
        return Ok(simap::stg::elaborate(&stg)?);
    }
    let path = args
        .iter()
        .find(|a| !a.starts_with("--") && !a.starts_with('-'))
        .ok_or("no specification given (pass a .g file or --bench <name>)")?;
    let text = std::fs::read_to_string(path)?;
    let stg = simap::stg::parse_g(&text)?;
    Ok(simap::stg::elaborate(&stg)?)
}

fn check(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let sg = load(args)?;
    let report = simap::sg::check_all(&sg);
    println!(
        "{}: {} signals, {} states",
        sg.name(),
        sg.signal_count(),
        sg.state_count()
    );
    println!("  speed-independent: {}", report.is_speed_independent());
    println!("  complete state coding: {}", report.has_csc());
    for v in report.violations.iter().take(10) {
        println!("  violation: {v}");
    }
    Ok(if report.is_ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|p| args.get(p + 1)).map(String::as_str)
}

fn map(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    let sg = load(args)?;
    let limit: usize = flag_value(args, "--limit")
        .or_else(|| flag_value(args, "-l"))
        .map(str::parse)
        .transpose()?
        .unwrap_or(2);
    let mut config = FlowConfig::with_limit(limit);
    config.repair_csc = args.iter().any(|a| a == "--csc-repair");
    config.verify = !args.iter().any(|a| a == "--no-verify");

    let report = run_flow(&sg, &config)?;
    print!("{}", dossier(&report));

    let circuit = build_circuit(&report.outcome.sg, &report.outcome.mc);
    if let Some(path) = flag_value(args, "--verilog") {
        let module = report.name.clone();
        std::fs::write(path, to_verilog(&circuit, &report.outcome.sg, &module))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag_value(args, "--dot") {
        std::fs::write(
            path,
            simap::sg::to_dot(&report.outcome.sg, &DotOptions { show_codes: true, ..Default::default() }),
        )?;
        println!("wrote {path}");
    }
    Ok(if report.inserted.is_some() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

fn bench(args: &[String]) -> Result<ExitCode, Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in simap::stg::benchmark_names() {
                let stg = simap::stg::benchmark(name).expect("known");
                let sg = simap::stg::elaborate(&stg)?;
                println!(
                    "{name:15} {:2} signals {:5} states",
                    sg.signal_count(),
                    sg.state_count()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        _ => {
            eprintln!("usage: simap bench list");
            Ok(ExitCode::FAILURE)
        }
    }
}
