//! Property-based tests (proptest) over the core data structures and the
//! invariants the paper's correctness rests on.

use proptest::prelude::*;
use simap::boolean::{
    algebraic_divide, generate_divisors, good_factor, Cover, Cube, DivisorConfig, Literal,
    MinimizeProblem,
};
use simap::sg::check_all;
use simap::stg::{elaborate, patterns};

const NVARS: usize = 6;

fn arb_cube() -> impl Strategy<Value = Cube> {
    // Per-variable trit: 0 absent, 1 positive, 2 negative.
    proptest::collection::vec(0u8..3, NVARS).prop_map(|trits| {
        Cube::from_literals(trits.iter().enumerate().filter_map(|(v, &t)| match t {
            1 => Some(Literal::pos(v)),
            2 => Some(Literal::neg(v)),
            _ => None,
        }))
        .expect("distinct variables cannot conflict")
    })
}

fn arb_cover() -> impl Strategy<Value = Cover> {
    proptest::collection::vec(arb_cube(), 1..6).prop_map(Cover::from_cubes)
}

proptest! {
    /// Minimization yields a function matching the ON/OFF specification.
    #[test]
    fn minimize_respects_on_off(assignment in proptest::collection::vec(0u8..3, 1 << NVARS)) {
        let on: Vec<u64> = assignment.iter().enumerate()
            .filter(|&(_, &t)| t == 1).map(|(c, _)| c as u64).collect();
        let off: Vec<u64> = assignment.iter().enumerate()
            .filter(|&(_, &t)| t == 2).map(|(c, _)| c as u64).collect();
        let problem = MinimizeProblem::new(NVARS, on.clone(), off.clone()).expect("disjoint");
        let f = problem.minimize();
        prop_assert!(f.covers_all(&on));
        prop_assert!(f.avoids_all(&off));
        let g = problem.minimize_complement();
        prop_assert!(g.covers_all(&off));
        prop_assert!(g.avoids_all(&on));
    }

    /// Minimization never produces more cubes than the ON-set has minterms.
    #[test]
    fn minimize_is_no_worse_than_minterms(assignment in proptest::collection::vec(0u8..3, 64)) {
        let on: Vec<u64> = assignment.iter().enumerate()
            .filter(|&(_, &t)| t == 1).map(|(c, _)| c as u64).collect();
        let off: Vec<u64> = assignment.iter().enumerate()
            .filter(|&(_, &t)| t == 2).map(|(c, _)| c as u64).collect();
        let problem = MinimizeProblem::new(6, on.clone(), off).expect("disjoint");
        prop_assert!(problem.minimize().cube_count() <= on.len().max(1));
    }

    /// Algebraic division identity: dividend = divisor·quotient + remainder
    /// as a boolean function (checked on the full 2^NVARS space).
    #[test]
    fn division_identity(dividend in arb_cover(), divisor in arb_cover()) {
        let division = algebraic_divide(&dividend, &divisor);
        let rebuilt = divisor.and(&division.quotient).or(&division.remainder);
        for code in 0..(1u64 << NVARS) {
            // divisor·quotient + remainder must imply dividend and cover it
            // when the quotient is non-trivial; for algebraic division the
            // cube-set identity gives exact functional equality.
            prop_assert_eq!(rebuilt.eval(code), dividend.eval(code), "code {:b}", code);
        }
    }

    /// Factoring preserves the function.
    #[test]
    fn factoring_preserves_function(cover in arb_cover()) {
        let tree = good_factor(&cover);
        for code in 0..(1u64 << NVARS) {
            prop_assert_eq!(tree.eval(code), cover.eval(code));
        }
        prop_assert!(tree.leaf_count() <= cover.literal_count().max(1));
    }

    /// Cover algebra: or/and agree with pointwise boolean operations.
    #[test]
    fn cover_algebra(a in arb_cover(), b in arb_cover()) {
        let or = a.or(&b);
        let and = a.and(&b);
        for code in 0..(1u64 << NVARS) {
            prop_assert_eq!(or.eval(code), a.eval(code) || b.eval(code));
            prop_assert_eq!(and.eval(code), a.eval(code) && b.eval(code));
        }
    }

    /// Cofactor: Shannon expansion reconstructs the function.
    #[test]
    fn shannon_expansion(cover in arb_cover(), var in 0usize..NVARS) {
        let pos = cover.cofactor(Literal::pos(var));
        let neg = cover.cofactor(Literal::neg(var));
        for code in 0..(1u64 << NVARS) {
            let expected = if code >> var & 1 == 1 { pos.eval(code) } else { neg.eval(code) };
            prop_assert_eq!(cover.eval(code), expected);
        }
    }

    /// Every generated divisor has at least two literals and differs from
    /// the cover itself (§3.1's "trivial divisors are not considered").
    #[test]
    fn divisors_are_nontrivial(cover in arb_cover()) {
        for d in generate_divisors(&cover, &DivisorConfig::default()) {
            prop_assert!(d.literal_count() >= 2);
            prop_assert!(d != cover);
        }
    }

    /// Sequencer specifications of any width and phase assignment are
    /// consistent, speed-independent and CSC-correct.
    #[test]
    fn sequencers_are_clean(k in 2usize..7) {
        let sg = elaborate(&patterns::sequencer(k, None)).expect("bounded");
        let report = check_all(&sg);
        prop_assert!(report.is_ok(), "{:?}", report.violations);
        prop_assert_eq!(sg.state_count(), 2 * k);
    }

    /// C-element joins of any width are clean and their covers are the
    /// expected k-literal cubes.
    #[test]
    fn celement_covers_are_wide_cubes(k in 2usize..6) {
        let sg = elaborate(&patterns::celement(k)).expect("bounded");
        prop_assert!(check_all(&sg).is_ok());
        let mc = simap::core::synthesize_mc(&sg).expect("CSC holds");
        prop_assert_eq!(mc.max_complexity(), k);
    }

    /// Fork/join controllers are clean for small shapes.
    #[test]
    fn fork_joins_are_clean(m in 1usize..4, depth in 1usize..3) {
        let sg = elaborate(&patterns::fork_join(m, depth)).expect("bounded");
        prop_assert!(check_all(&sg).is_ok());
    }

    /// Muller pipelines are clean at every depth.
    #[test]
    fn pipelines_are_clean(n in 1usize..6) {
        let sg = elaborate(&patterns::pipeline(n)).expect("bounded");
        prop_assert!(check_all(&sg).is_ok());
    }

    /// The heuristic SOP engine agrees with the exact BDD engine:
    /// covers built through or/and/cofactor denote the same functions.
    #[test]
    fn sop_ops_agree_with_bdd(a in arb_cover(), b in arb_cover()) {
        use simap::boolean::Bdd;
        let mut bdd = Bdd::new();
        let ra = bdd.from_cover(&a);
        let rb = bdd.from_cover(&b);
        let or_bdd = bdd.or(ra, rb);
        let and_bdd = bdd.and(ra, rb);
        let or_sop = bdd.from_cover(&a.or(&b));
        let and_sop = bdd.from_cover(&a.and(&b));
        prop_assert_eq!(or_bdd, or_sop, "or mismatch");
        prop_assert_eq!(and_bdd, and_sop, "and mismatch");
    }

    /// The minimizer's output is exactly verified against its spec by the
    /// BDD engine (no reliance on the minimizer's own debug assertions).
    #[test]
    fn minimizer_certified_by_bdd(assignment in proptest::collection::vec(0u8..3, 64)) {
        use simap::boolean::cover_matches_spec;
        let on: Vec<u64> = assignment.iter().enumerate()
            .filter(|&(_, &t)| t == 1).map(|(c, _)| c as u64).collect();
        let off: Vec<u64> = assignment.iter().enumerate()
            .filter(|&(_, &t)| t == 2).map(|(c, _)| c as u64).collect();
        let problem = MinimizeProblem::new(6, on.clone(), off.clone()).expect("disjoint");
        let f = problem.minimize();
        prop_assert!(cover_matches_spec(&f, 6, &on, &off));
    }

    /// BDD to_cover/from_cover is a semantic identity.
    #[test]
    fn bdd_cover_roundtrip(cover in arb_cover()) {
        use simap::boolean::Bdd;
        let mut bdd = Bdd::new();
        let r = bdd.from_cover(&cover);
        let back = bdd.to_cover(r);
        prop_assert_eq!(bdd.from_cover(&back), r);
    }

    /// sat_count agrees with brute-force enumeration.
    #[test]
    fn bdd_sat_count_exact(cover in arb_cover()) {
        use simap::boolean::Bdd;
        let mut bdd = Bdd::new();
        let r = bdd.from_cover(&cover);
        let brute = (0..(1u64 << NVARS)).filter(|&c| cover.eval(c)).count() as u64;
        prop_assert_eq!(bdd.sat_count(r, NVARS), brute);
    }

    /// Event insertion is total and safe: for ANY cube divisor over a
    /// sequencer's signals, `insert_function` either rejects with a clean
    /// error or produces a fully verified A' whose state count grew by
    /// exactly |ER(x+)| + |ER(x−)|.
    #[test]
    fn insertion_is_total_and_safe(trits in proptest::collection::vec(0u8..3, 4)) {
        use simap::boolean::{Cover, Cube, Literal};
        use simap::core::{compute_insertion, insert_function, InsertionError};

        let sg = elaborate(&patterns::sequencer(4, None)).expect("bounded");
        let cube = Cube::from_literals(trits.iter().enumerate().filter_map(|(v, &t)| match t {
            1 => Some(Literal::pos(v)),
            2 => Some(Literal::neg(v)),
            _ => None,
        })).expect("distinct vars");
        let f = Cover::from_cube(cube);
        match insert_function(&sg, &f, "w") {
            Ok((new_sg, ins)) => {
                prop_assert!(check_all(&new_sg).is_ok());
                prop_assert_eq!(
                    new_sg.state_count(),
                    sg.state_count() + ins.er_plus.count() + ins.er_minus.count()
                );
                prop_assert_eq!(new_sg.signal_count(), sg.signal_count() + 1);
            }
            Err(e) => {
                // Clean rejections only; `Malformed` means the closure rules
                // let an inconsistent split through, which must not happen
                // for these specs.
                prop_assert!(
                    !matches!(e, InsertionError::Malformed { .. }),
                    "unclean rejection: {}", e
                );
            }
        }
        // compute_insertion and insert_function agree on legality.
        let _ = compute_insertion(&sg, &f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Decomposing a C-element join at i=2 terminates, succeeds, keeps all
    /// SG properties and respects the literal limit — the paper's central
    /// soundness claim, exercised across widths.
    #[test]
    fn decomposition_soundness(k in 3usize..5) {
        let sg = elaborate(&patterns::celement(k)).expect("bounded");
        let result = simap::core::decompose(&sg, &simap::core::DecomposeConfig::with_limit(2))
            .expect("CSC holds");
        prop_assert!(result.implementable);
        prop_assert!(result.mc.max_complexity() <= 2);
        prop_assert!(check_all(&result.sg).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The execution-layer determinism contract: for random benchmark
    /// subsets, literal limits and job counts, a parallel `Batch` emits
    /// byte-identical reports to a sequential one, and re-running the
    /// batch on the same `Engine` answers every elaboration from the
    /// cache (nonzero hits, no new misses).
    #[test]
    fn parallel_batch_is_deterministic_and_caches(
        subset in 1usize..32,
        limit in 2usize..4,
        jobs in 2usize..5,
    ) {
        use simap::core::{to_csv, to_markdown};
        use simap::{Config, Engine};

        let pool = ["half", "hazard", "dff", "chu133", "ebergen"];
        let names: Vec<&str> = pool
            .iter()
            .enumerate()
            .filter(|&(i, _)| subset >> i & 1 == 1)
            .map(|(_, &n)| n)
            .collect();
        let limits = [limit];

        let engine = Engine::new(Config::builder().verify(false).build().expect("valid"));
        let sequential =
            engine.batch(names.clone()).limits(limits).jobs(1).run().expect("sequential");
        let parallel =
            engine.batch(names.clone()).limits(limits).jobs(jobs).run().expect("parallel");
        prop_assert_eq!(to_markdown(&limits, &sequential), to_markdown(&limits, &parallel));
        prop_assert_eq!(to_csv(&limits, &sequential), to_csv(&limits, &parallel));

        let before = engine.cache_stats();
        prop_assert_eq!(before.misses as usize, names.len(), "one elaboration per name");
        let again = engine.batch(names.clone()).limits(limits).jobs(jobs).run().expect("rerun");
        prop_assert_eq!(to_csv(&limits, &sequential), to_csv(&limits, &again));
        let after = engine.cache_stats();
        prop_assert_eq!(after.misses, before.misses, "no new elaborations on reuse");
        prop_assert!(after.hits > before.hits, "the rerun must report cache hits");
    }
}
