//! End-to-end checks of the `POST /stg` ingestion path over real TCP
//! sockets: responses byte-identical to `simap map <file.g> --json`,
//! both body shapes (raw `.g` text and the JSON envelope) landing on one
//! result-cache fingerprint, a server restart answering from the
//! persistent cache without enqueueing work, gateway metering (rate
//! limits apply, `by_endpoint` counts `stg`), and a seeded-corpus burst.
//!
//! The burst size is environment-tunable (`SIMAP_BURST_SPECS`, default
//! 64) so CI can push 10^3 specs through the gateway.

use simap::core::json::{self, Json};
use simap::serve::{ServeConfig, Server, ServerHandle};
use simap::stg::{patterns, write_g};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let (_, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (status, body.to_string())
}

fn start(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn stop(handle: ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A scratch directory that cleans up after itself even on panic.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("simap-stg-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn metrics(addr: SocketAddr) -> Json {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200, "{body}");
    json::parse(body.trim_end()).expect("metrics is JSON")
}

#[test]
fn stg_response_is_byte_identical_to_the_cli() {
    let scratch = Scratch::new("cli");
    let spec = write_g(&patterns::corpus_net(42, 0));
    let path = scratch.0.join("spec.g");
    std::fs::write(&path, &spec).unwrap();

    let cli = Command::new(env!("CARGO_BIN_EXE_simap"))
        .args(["map", path.to_str().unwrap(), "--json"])
        .output()
        .expect("binary runs");
    assert!(cli.status.success(), "{}", String::from_utf8_lossy(&cli.stderr));

    let (handle, join) = start(ServeConfig { jobs: 1, ..ServeConfig::default() });
    let addr = handle.addr();

    // The raw `.g` body and the JSON envelope both answer with exactly
    // the CLI's stdout.
    let (status, raw) = http(addr, "POST", "/stg", &spec);
    assert_eq!(status, 200, "{raw}");
    assert_eq!(raw.as_bytes(), cli.stdout, "POST /stg must match `simap map --json`");
    let envelope = format!("{{\"source\": {}}}", Json::Str(spec.clone()).emit());
    let (status, wrapped) = http(addr, "POST", "/stg", &envelope);
    assert_eq!(status, 200, "{wrapped}");
    assert_eq!(wrapped.as_bytes(), cli.stdout);

    // A parse error surfaces as 422 with the parser's line/column.
    let (status, body) = http(addr, "POST", "/stg", ".inputsx y\n.graph\n.end\n");
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("line 1") && body.contains(".inputsx"), "{body}");

    stop(handle, join);
}

#[test]
fn repeated_stg_requests_answer_from_the_persistent_cache() {
    let scratch = Scratch::new("cache");
    let cache_dir = scratch.0.join("results");
    let config =
        || ServeConfig { jobs: 1, cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };
    let spec = write_g(&patterns::corpus_net(7, 1));

    // First instance synthesizes for real and stores the result.
    let (handle, join) = start(config());
    let (status, first) = http(handle.addr(), "POST", "/stg", &spec);
    assert_eq!(status, 200, "{first}");
    let doc = metrics(handle.addr());
    let cache = doc.get("gateway").unwrap().get("rescache").expect("rescache section");
    assert_eq!(cache.get("stores").unwrap().as_usize(), Some(1), "{doc:?}");
    stop(handle, join);

    // A fresh instance on the same directory serves the cached bytes
    // without ever enqueueing a job — `"submitted":0`.
    let (handle, join) = start(config());
    let (status, second) = http(handle.addr(), "POST", "/stg", &spec);
    assert_eq!(status, 200, "{second}");
    assert_eq!(first.as_bytes(), second.as_bytes(), "cache hit must be byte-identical");
    let doc = metrics(handle.addr());
    assert_eq!(
        doc.get("gateway").unwrap().get("rescache").unwrap().get("hits").unwrap().as_usize(),
        Some(1),
        "{doc:?}"
    );
    assert_eq!(
        doc.get("queue").unwrap().get("submitted").unwrap().as_usize(),
        Some(0),
        "a warm hit never reaches the queue: {doc:?}"
    );
    // The JSON envelope of the same source shares the fingerprint.
    let envelope = format!("{{\"source\": {}}}", Json::Str(spec).emit());
    let (status, wrapped) = http(handle.addr(), "POST", "/stg", &envelope);
    assert_eq!(status, 200, "{wrapped}");
    assert_eq!(first.as_bytes(), wrapped.as_bytes());
    assert_eq!(
        metrics(handle.addr()).get("queue").unwrap().get("submitted").unwrap().as_usize(),
        Some(0)
    );
    stop(handle, join);
}

#[test]
fn stg_is_metered_by_the_gateway() {
    let scratch = Scratch::new("meter");
    let keyfile = scratch.0.join("keys.tsv");
    std::fs::write(&keyfile, "k-frida\tfrida\tfree\n").unwrap();
    // Free tier at base 1 req/s: burst of exactly one token, so the
    // second POST /stg must shed with 429 — proof the endpoint sits
    // behind the same gateway chain as /synthesize.
    let (handle, join) = start(ServeConfig {
        jobs: 1,
        api_keys: Some(keyfile),
        rate_limit: 1.0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();
    let spec = write_g(&patterns::corpus_net(3, 0));

    let post = |key: Option<&str>| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let auth = key.map(|k| format!("X-Api-Key: {k}\r\n")).unwrap_or_default();
        write!(
            stream,
            "POST /stg HTTP/1.1\r\nHost: test\r\n{auth}Content-Length: {}\r\n\r\n{spec}",
            spec.len()
        )
        .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).expect("status")
    };

    assert_eq!(post(None), 401, "keyed mode protects /stg");
    assert_eq!(post(Some("k-frida")), 200);
    assert_eq!(post(Some("k-frida")), 429, "rate limit applies to /stg");

    let doc = metrics(addr);
    let by_endpoint = doc.get("requests").unwrap().get("by_endpoint").expect("endpoint tallies");
    assert_eq!(by_endpoint.get("stg").unwrap().as_usize(), Some(3), "{doc:?}");

    stop(handle, join);
}

#[test]
fn corpus_burst_flows_through_the_gateway() {
    let count: usize =
        std::env::var("SIMAP_BURST_SPECS").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
    let (handle, join) = start(ServeConfig { jobs: 0, ..ServeConfig::default() });
    let addr = handle.addr();

    for (i, net) in patterns::corpus(0xB0057, count).enumerate() {
        let spec = write_g(&net);
        let (status, body) = http(addr, "POST", "/stg", &spec);
        assert_eq!(status, 200, "spec {i} ({}): {body}", net.name());
        assert!(body.starts_with("{\"name\":"), "spec {i}: {body}");
    }

    let doc = metrics(addr);
    let by_endpoint = doc.get("requests").unwrap().get("by_endpoint").unwrap();
    assert_eq!(by_endpoint.get("stg").unwrap().as_usize(), Some(count), "{doc:?}");
    let queue = doc.get("queue").unwrap();
    assert_eq!(queue.get("completed").unwrap().as_usize(), Some(count), "{doc:?}");
    assert_eq!(queue.get("failed").unwrap().as_usize(), Some(0), "{doc:?}");

    stop(handle, join);
}
