//! Monte-Carlo simulation campaigns over decomposed circuits: the
//! randomized complement to the exhaustive verifier, exercised on the
//! larger benchmarks where full exploration is the expensive path.

use simap::core::{build_circuit, decompose, DecomposeConfig};
use simap::netlist::{simulate, SimConfig};

fn decomposed(name: &str) -> (simap::sg::StateGraph, simap::netlist::Circuit) {
    let stg = simap::stg::benchmark(name).expect("known benchmark");
    let sg = simap::stg::elaborate(&stg).expect("elaborates");
    let result = decompose(&sg, &DecomposeConfig::with_limit(2)).expect("CSC holds");
    assert!(result.implementable, "{name} must be 2-input implementable");
    let circuit = build_circuit(&result.sg, &result.mc);
    (result.sg, circuit)
}

#[test]
fn decomposed_mr1_survives_long_walks() {
    let (sg, circuit) = decomposed("mr1");
    let stats = simulate(&circuit, &sg, &SimConfig { runs: 16, steps: 20_000, seed: 11 })
        .expect("no hazard on any walk");
    assert!(stats.transitions >= 100_000);
}

#[test]
fn decomposed_vbe10b_survives_long_walks() {
    let (sg, circuit) = decomposed("vbe10b");
    let stats = simulate(&circuit, &sg, &SimConfig { runs: 8, steps: 20_000, seed: 23 })
        .expect("no hazard on any walk");
    assert!(stats.transitions >= 100_000);
}

#[test]
fn simulation_and_verifier_agree_on_mutants() {
    // For a batch of mutated dff circuits, the randomized campaign and the
    // exhaustive verifier must reach the same verdict (the composed space
    // is tiny, so walks cover it).
    use simap::core::{synthesize_mc, SignalBody};
    use simap::netlist::{verify_speed_independence, VerifyConfig};

    let stg = simap::stg::benchmark("dff").expect("known");
    let sg = simap::stg::elaborate(&stg).expect("elaborates");
    let mc = synthesize_mc(&sg).expect("CSC holds");

    for flip_set in [false, true] {
        let mut mutant = simap::core::McImpl { signals: mc.signals.clone() };
        if flip_set {
            if let SignalBody::StandardC { set, reset } = &mut mutant.signals[0].body {
                std::mem::swap(set, reset);
            }
        }
        let circuit = build_circuit(&sg, &mutant);
        let exhaustive = verify_speed_independence(&circuit, &sg, &VerifyConfig::default()).is_ok();
        let random =
            simulate(&circuit, &sg, &SimConfig { runs: 64, steps: 5_000, seed: 5 }).is_ok();
        assert_eq!(exhaustive, random, "verifier and simulator disagree (flip_set = {flip_set})");
    }
}
