//! Integration tests of the execution layer shipped in 0.3: the
//! validated `Config`, the cache-carrying `Engine`, and the parallel
//! `Batch` executor — including the CI smoke test that parallel and
//! sequential batches emit byte-identical reports.

use simap::core::{to_csv, to_markdown};
use simap::{Config, Engine, Error, Stage};

#[test]
fn config_is_validated_once_at_build() {
    let err = Config::builder().literal_limit(1).build().unwrap_err();
    assert!(matches!(err, Error::InvalidConfig { .. }), "{err}");
    assert_eq!(err.stage(), Stage::Configure);
    assert!(err.to_string().contains("[configure]"), "{err}");
    assert!(Config::builder().or_limit(1).build().is_err());
    assert!(Config::builder().literal_limit(2).or_limit(2).build().is_ok());
}

#[test]
fn engine_reuse_skips_elaboration() {
    let engine = Engine::new(Config::default());
    let first = engine.synthesize("hazard").expect("flow");
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));

    let again = engine.synthesize("hazard").expect("flow");
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1), "second run must hit the cache");
    assert_eq!(first.inserted, again.inserted);
    assert_eq!(first.si_cost, again.si_cost);
    assert_eq!(first.verified, again.verified);
}

#[test]
fn engine_clones_and_config_variants_share_one_cache() {
    let engine = Engine::new(Config::builder().verify(false).build().unwrap());
    engine.clone().synthesize("half").expect("flow");
    // A different literal limit does not change elaboration: hit.
    let at3 = engine.with_config(Config::builder().literal_limit(3).build().unwrap());
    at3.synthesize("half").expect("flow");
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
}

#[test]
fn staged_pipeline_through_engine_also_hits() {
    let engine = Engine::default();
    engine.benchmark("dff").elaborate().expect("elaborates");
    let covers = engine.benchmark("dff").elaborate().expect("cached").covers().expect("CSC");
    assert!(covers.mc().max_complexity() >= 2);
    assert_eq!(engine.cache_stats().hits, 1);
}

#[test]
fn parallel_batch_matches_sequential() {
    // The CI smoke test: markdown and CSV renderings must be
    // byte-identical between jobs=1 and jobs=4, rows in input order.
    let engine = Engine::new(Config::builder().verify(false).build().unwrap());
    let names = ["half", "hazard", "dff", "chu133", "chu150", "ebergen"];
    let limits = [2usize, 3];

    let sequential = engine.batch(names).limits(limits).jobs(1).run().expect("sequential");
    let parallel = engine.batch(names).limits(limits).jobs(4).run().expect("parallel");

    assert_eq!(to_markdown(&limits, &sequential), to_markdown(&limits, &parallel));
    assert_eq!(to_csv(&limits, &sequential), to_csv(&limits, &parallel));

    // The parallel run re-used every elaboration of the sequential one.
    let stats = engine.cache_stats();
    assert_eq!(stats.misses as usize, names.len());
    assert!(stats.hits as usize >= names.len() * limits.len());
}

#[test]
fn batch_without_engine_still_works() {
    let rows = simap::Batch::over_benchmarks(["half"]).jobs(2).run().expect("batch");
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].name, "half");
}

#[test]
fn engine_caches_g_sources_by_text() {
    let src = ".model ring\n.inputs a\n.outputs b\n.graph\n\
               a+ b+\nb+ a-\na- b-\nb- a+\n.marking { <b-,a+> }\n.end\n";
    let engine = Engine::default();
    engine.g_source(src).run().expect("flow");
    engine.g_source(src).run().expect("flow");
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
}

#[test]
fn cache_hits_emit_the_same_observer_stages_as_cold_runs() {
    use simap::core::RecordingObserver;
    use simap::FlowObserver;
    use std::sync::{Arc, Mutex};

    struct Shared(Arc<Mutex<RecordingObserver>>);
    impl FlowObserver for Shared {
        fn on_stage_start(&mut self, stage: Stage, spec: &str) {
            self.0.lock().unwrap().on_stage_start(stage, spec);
        }
    }

    let engine = Engine::default();
    let stg = simap::stg::benchmark("half").unwrap();
    let record = |engine: &Engine, stg: &simap::stg::Stg| {
        let rec = Arc::new(Mutex::new(RecordingObserver::default()));
        engine.stg(stg.clone()).observer(Shared(rec.clone())).elaborate().unwrap();
        let stages = rec.lock().unwrap().stages.clone();
        stages
    };
    let cold = record(&engine, &stg);
    let warm = record(&engine, &stg);
    assert_eq!(engine.cache_stats().hits, 1, "second elaboration must be a hit");
    assert_eq!(cold, warm, "cache hits must replay the cold stage stream");
    assert!(!cold.contains(&Stage::Load), "STG sources have no load stage");
}

#[test]
fn cache_hits_replay_csc_conflicts_and_repairs() {
    use simap::core::RecordingObserver;
    use simap::FlowObserver;
    use std::sync::{Arc, Mutex};

    struct Shared(Arc<Mutex<RecordingObserver>>);
    impl FlowObserver for Shared {
        fn on_csc_conflicts(&mut self, conflicts: &[simap::core::CscConflict]) {
            self.0.lock().unwrap().on_csc_conflicts(conflicts);
        }
        fn on_csc_repair(&mut self, signal: &str) {
            self.0.lock().unwrap().on_csc_repair(signal);
        }
    }

    // a+ ; b+ ; b- ; a- over two outputs: code 10 repeats, the textbook
    // CSC conflict, repairable with one state signal.
    let src = ".model cscdemo\n.outputs a b\n.graph\n\
               a+ b+\nb+ b-\nb- a-\na- a+\n.marking { <a-,a+> }\n.end\n";
    let engine = Engine::new(Config::builder().repair_csc(true).build().unwrap());
    let record = |engine: &Engine| {
        let rec = Arc::new(Mutex::new(RecordingObserver::default()));
        engine.g_source(src).observer(Shared(rec.clone())).elaborate().unwrap();
        let seen = rec.lock().unwrap();
        (seen.conflict_counts.clone(), seen.csc_insertions.clone())
    };
    let cold = record(&engine);
    let warm = record(&engine);
    assert_eq!(engine.cache_stats().hits, 1, "second elaboration must be a hit");
    assert!(!cold.1.is_empty(), "repair must have inserted a state signal");
    assert_eq!(cold, warm, "hits must replay conflict and repair events");
}

#[test]
fn reach_limit_is_honored_through_config() {
    let config = Config::builder().reach_max_states(4).build().unwrap();
    let err = Engine::new(config).synthesize("hazard").unwrap_err();
    assert!(matches!(err, Error::Elaborate(_)), "{err}");
    assert_eq!(err.stage(), Stage::Elaborate);
}
