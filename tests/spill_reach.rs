//! Acceptance tests for the external-memory spill engine beyond the
//! differential harness: a pattern-composed net past the symbolic
//! materialize limit elaborating under a bounded resident budget, and
//! scratch-file hygiene on success, error and panic exit paths.

use simap::stg::{benchmark, elaborate_with, elaborate_with_stats, patterns, ReachError};
use simap::{ReachConfig, ReachStrategy};
use std::path::PathBuf;

fn spill_config(memory_budget: usize) -> ReachConfig {
    ReachConfig {
        strategy: ReachStrategy::Spill,
        memory_budget,
        shards: 4,
        ..ReachConfig::default()
    }
}

/// A scratch directory under the system temp dir, removed on drop so a
/// failing assertion cannot leak it past the test run.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("simap-spill-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn entries(&self) -> Vec<PathBuf> {
        std::fs::read_dir(&self.0)
            .expect("scratch dir readable")
            .map(|e| e.expect("entry").path())
            .collect()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The headline acceptance case: ten independent 4-state rings compose
/// to 4^10 = 1,048,576 states — past `materialize_limit`, where the
/// symbolic engine refuses to build a graph — yet the spill engine
/// fully elaborates it under a 256 MiB budget with its tracked resident
/// peak bounded by that budget, and the graph matches Packed's
/// numbering state for state. Release-only: a million-state build under
/// debug assertions takes minutes, and CI's conformance job runs
/// release.
#[test]
fn million_state_net_elaborates_under_a_bounded_budget() {
    if cfg!(debug_assertions) {
        eprintln!("skipped: release-mode acceptance test");
        return;
    }
    let parts: Vec<_> = (0..10).map(|_| patterns::sequencer(2, None)).collect();
    let grid = patterns::parallel("grid", &parts);
    let budget = 256 * 1024 * 1024;
    let config = ReachConfig { max_states: 2_000_000, ..spill_config(budget) };
    let (spilled, stats) = elaborate_with_stats(&grid, &config).expect("spill elaborates");
    assert_eq!(spilled.state_count(), 4usize.pow(10));
    assert!(
        spilled.state_count() > ReachConfig::default().materialize_limit,
        "the point of the exercise: bigger than the symbolic materialize limit"
    );
    let counters = stats.spill.expect("spill counters");
    assert!(
        counters.resident_peak <= budget as u64,
        "resident working set {} exceeds the {budget}-byte budget",
        counters.resident_peak
    );

    let packed =
        elaborate_with(&grid, &ReachConfig { max_states: 2_000_000, ..ReachConfig::default() })
            .expect("packed elaborates");
    assert_eq!(spilled.signals(), packed.signals());
    assert_eq!(spilled.state_count(), packed.state_count());
    assert_eq!(spilled.initial(), packed.initial());
    for s in spilled.states() {
        assert_eq!(spilled.code(s), packed.code(s), "code of state {}", s.0);
        assert_eq!(spilled.succ(s), packed.succ(s), "successors of state {}", s.0);
    }
}

/// Success path: after a run that demonstrably created spill files, the
/// caller's scratch directory is left empty (the per-run subdirectory
/// and everything in it are gone).
#[test]
fn spill_dir_is_empty_after_success() {
    let scratch = ScratchDir::new("ok");
    let stg = benchmark("mr0").expect("known benchmark");
    let config = ReachConfig { spill_dir: Some(scratch.0.clone()), ..spill_config(1024 * 1024) };
    let (_, stats) = elaborate_with_stats(&stg, &config).expect("elaborates");
    let counters = stats.spill.expect("spill counters");
    assert!(counters.files_created > 0, "mr0 at 1 MiB must spill: {counters:?}");
    assert_eq!(scratch.entries(), Vec::<PathBuf>::new(), "scratch files leaked");
}

/// Error path: a `StateLimit` abort mid-exploration — after spill files
/// were already written — must still tear the per-run directory down.
/// This is the regression test for the RAII manifest guard.
#[test]
fn spill_dir_is_empty_after_state_limit_error() {
    let scratch = ScratchDir::new("err");
    let stg = benchmark("mr0").expect("known benchmark");
    let config =
        ReachConfig { spill_dir: Some(scratch.0.clone()), max_states: 2048, ..spill_config(4096) };
    let err = elaborate_with(&stg, &config).expect_err("limit must trip");
    assert!(matches!(err, ReachError::StateLimit { limit: 2048, .. }), "{err:?}");
    assert_eq!(scratch.entries(), Vec::<PathBuf>::new(), "scratch files leaked on error");
}

/// The default placement (no `spill_dir`) works and reports counters;
/// nothing of ours is left in the system temp dir afterwards.
#[test]
fn default_spill_placement_cleans_up() {
    let stg = benchmark("mr0").expect("known benchmark");
    let (_, stats) = elaborate_with_stats(&stg, &spill_config(1024 * 1024)).expect("elaborates");
    let counters = stats.spill.expect("spill counters");
    assert!(counters.spilled_bytes > 0);
    let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .expect("temp dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&format!("simap-spill-{}-", std::process::id())))
        .collect();
    assert_eq!(leftovers, Vec::<String>::new(), "run directories leaked in temp");
}
