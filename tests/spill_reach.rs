//! Acceptance tests for the external-memory spill engine beyond the
//! differential harness: a pattern-composed net past the symbolic
//! materialize limit elaborating under a bounded resident budget,
//! scratch-file hygiene on success, error and panic exit paths, and the
//! checkpoint/resume contract proven the hard way — a child `simap
//! check` SIGKILLed mid-exploration, resumed in-process, and held to
//! state-for-state parity with a cold run.

use simap::stg::{benchmark, elaborate_with, elaborate_with_stats, parse_g, patterns, ReachError};
use simap::{ReachConfig, ReachStrategy};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn spill_config(memory_budget: usize) -> ReachConfig {
    ReachConfig {
        strategy: ReachStrategy::Spill,
        memory_budget,
        shards: 4,
        ..ReachConfig::default()
    }
}

/// A scratch directory under the system temp dir, removed on drop so a
/// failing assertion cannot leak it past the test run.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("simap-spill-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    fn entries(&self) -> Vec<PathBuf> {
        std::fs::read_dir(&self.0)
            .expect("scratch dir readable")
            .map(|e| e.expect("entry").path())
            .collect()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The headline acceptance case: ten independent 4-state rings compose
/// to 4^10 = 1,048,576 states — past `materialize_limit`, where the
/// symbolic engine refuses to build a graph — yet the spill engine
/// fully elaborates it under a 256 MiB budget with its tracked resident
/// peak bounded by that budget, and the graph matches Packed's
/// numbering state for state. Release-only: a million-state build under
/// debug assertions takes minutes, and CI's conformance job runs
/// release.
#[test]
fn million_state_net_elaborates_under_a_bounded_budget() {
    if cfg!(debug_assertions) {
        eprintln!("skipped: release-mode acceptance test");
        return;
    }
    let parts: Vec<_> = (0..10).map(|_| patterns::sequencer(2, None)).collect();
    let grid = patterns::parallel("grid", &parts);
    let budget = 256 * 1024 * 1024;
    let config = ReachConfig { max_states: 2_000_000, ..spill_config(budget) };
    let (spilled, stats) = elaborate_with_stats(&grid, &config).expect("spill elaborates");
    assert_eq!(spilled.state_count(), 4usize.pow(10));
    assert!(
        spilled.state_count() > ReachConfig::default().materialize_limit,
        "the point of the exercise: bigger than the symbolic materialize limit"
    );
    let counters = stats.spill.expect("spill counters");
    assert!(
        counters.resident_peak <= budget as u64,
        "resident working set {} exceeds the {budget}-byte budget",
        counters.resident_peak
    );

    let packed =
        elaborate_with(&grid, &ReachConfig { max_states: 2_000_000, ..ReachConfig::default() })
            .expect("packed elaborates");
    assert_eq!(spilled.signals(), packed.signals());
    assert_eq!(spilled.state_count(), packed.state_count());
    assert_eq!(spilled.initial(), packed.initial());
    for s in spilled.states() {
        assert_eq!(spilled.code(s), packed.code(s), "code of state {}", s.0);
        assert_eq!(spilled.succ(s), packed.succ(s), "successors of state {}", s.0);
    }
}

/// Success path: after a run that demonstrably created spill files, the
/// caller's scratch directory is left empty (the per-run subdirectory
/// and everything in it are gone).
#[test]
fn spill_dir_is_empty_after_success() {
    let scratch = ScratchDir::new("ok");
    let stg = benchmark("mr0").expect("known benchmark");
    let config = ReachConfig { spill_dir: Some(scratch.0.clone()), ..spill_config(1024 * 1024) };
    let (_, stats) = elaborate_with_stats(&stg, &config).expect("elaborates");
    let counters = stats.spill.expect("spill counters");
    assert!(counters.files_created > 0, "mr0 at 1 MiB must spill: {counters:?}");
    assert_eq!(scratch.entries(), Vec::<PathBuf>::new(), "scratch files leaked");
}

/// Error path: a `StateLimit` abort mid-exploration — after spill files
/// were already written — must still tear the per-run directory down.
/// This is the regression test for the RAII manifest guard.
#[test]
fn spill_dir_is_empty_after_state_limit_error() {
    let scratch = ScratchDir::new("err");
    let stg = benchmark("mr0").expect("known benchmark");
    let config =
        ReachConfig { spill_dir: Some(scratch.0.clone()), max_states: 2048, ..spill_config(4096) };
    let err = elaborate_with(&stg, &config).expect_err("limit must trip");
    assert!(matches!(err, ReachError::StateLimit { limit: 2048, .. }), "{err:?}");
    assert_eq!(scratch.entries(), Vec::<PathBuf>::new(), "scratch files leaked on error");
}

/// A composed net big and slow enough (under a floor budget) that a
/// child `simap check` reliably survives past its first committed
/// checkpoint before we kill it.
fn kill_target_net(rings: usize) -> String {
    let parts: Vec<_> = (0..rings).map(|_| patterns::sequencer(2, None)).collect();
    simap::stg::write_g(&patterns::parallel("grid", &parts))
}

/// Spawns `simap check` on `spec` with per-level checkpointing into
/// `ckpt`, waits for the first committed `MANIFEST`, then SIGKILLs the
/// child at a pseudo-random later moment. Returns `true` when the kill
/// genuinely interrupted the run (a manifest survives to resume from);
/// `false` when the child won the race and finished (its success path
/// cleans the checkpoint away).
fn kill_check_mid_run(spec: &std::path::Path, ckpt: &std::path::Path, attempt: u32) -> bool {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_simap"))
        .arg("check")
        .arg(spec)
        .args(["--strategy", "spill", "--memory-budget", "4096", "--shards", "4"])
        .args(["--checkpoint-every", "1"])
        .arg("--checkpoint-dir")
        .arg(ckpt)
        // Keep the child's spill scratch inside the test's directory:
        // SIGKILL never runs its RAII cleanup, so the crashed run's
        // scratch must die with the test instead of littering temp.
        .arg("--spill-dir")
        .arg(ckpt.parent().expect("checkpoint dir has a parent"))
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn simap check");
    let manifest = ckpt.join("MANIFEST");
    let deadline = Instant::now() + Duration::from_secs(60);
    while !manifest.exists() && Instant::now() < deadline {
        if matches!(child.try_wait(), Ok(Some(_))) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Vary the kill level across attempts: a SplitMix-style mix of the
    // pid and the attempt number spreads the extra delay over 0..32ms,
    // so repeated runs die at different BFS levels.
    let mix = (u64::from(std::process::id()) ^ (u64::from(attempt) << 32))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    std::thread::sleep(Duration::from_millis(mix >> 59));
    let _ = child.kill();
    let _ = child.wait();
    manifest.exists()
}

/// The exploration config matching [`kill_check_mid_run`]'s flags: the
/// checkpoint's config digest covers `max_states`, `max_tokens` and
/// `shards`, so the resuming run must agree on those (budget and jobs
/// are free to differ — the result is byte-identical by contract).
fn kill_check_config() -> ReachConfig {
    spill_config(4096)
}

/// The kill/resume acceptance case: a child `simap check` with
/// per-level checkpointing is SIGKILLed mid-exploration, the surviving
/// checkpoint is resumed in-process, and the finished graph must match
/// a cold packed elaboration state for state — same numbering, codes
/// and arcs — with the checkpoint directory cleaned on success.
#[test]
fn sigkilled_check_resumes_byte_identically() {
    let scratch = ScratchDir::new("kill");
    let ckpt_dir = scratch.0.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let spec = scratch.0.join("grid.g");
    // Debug-mode spill is slow; a smaller grid still spans many levels.
    let source = kill_target_net(if cfg!(debug_assertions) { 5 } else { 8 });
    std::fs::write(&spec, &source).expect("write spec");
    let stg = parse_g(&source).expect("round-trips");

    let mut interrupted = false;
    for attempt in 0..5 {
        if kill_check_mid_run(&spec, &ckpt_dir, attempt) {
            interrupted = true;
            break;
        }
    }
    assert!(interrupted, "could not SIGKILL `simap check` mid-run in 5 attempts");

    let config = ReachConfig { resume: Some(ckpt_dir.clone()), ..kill_check_config() };
    let (resumed, stats) = elaborate_with_stats(&stg, &config).expect("resume elaborates");
    let counters = stats.spill.expect("spill counters");
    assert!(counters.resume_level >= 1, "resume must continue a checkpoint: {counters:?}");

    let oracle = elaborate_with(&stg, &ReachConfig::default()).expect("packed elaborates");
    assert_eq!(resumed.signals(), oracle.signals());
    assert_eq!(resumed.state_count(), oracle.state_count());
    assert_eq!(resumed.initial(), oracle.initial());
    for s in resumed.states() {
        assert_eq!(resumed.code(s), oracle.code(s), "code of state {}", s.0);
        assert_eq!(resumed.succ(s), oracle.succ(s), "successors of state {}", s.0);
        assert_eq!(resumed.pred(s), oracle.pred(s), "predecessors of state {}", s.0);
    }
    assert_eq!(
        std::fs::read_dir(&ckpt_dir).expect("checkpoint dir readable").count(),
        0,
        "a successful resume must clean the checkpoint away"
    );
}

/// Workspace-level corruption tolerance: a checkpoint left by a killed
/// child refuses to resume after a single bit flip in its manifest —
/// with a diagnostic naming the artifact — refuses under a different
/// shard count — naming both config digests — and still resumes cleanly
/// once the original bytes are restored (validation never destroys the
/// checkpoint).
#[test]
fn corrupted_or_mismatched_checkpoints_are_refused_then_recover() {
    let scratch = ScratchDir::new("corrupt");
    let ckpt_dir = scratch.0.join("ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");
    let spec = scratch.0.join("grid.g");
    let source = kill_target_net(if cfg!(debug_assertions) { 5 } else { 8 });
    std::fs::write(&spec, &source).expect("write spec");
    let stg = parse_g(&source).expect("round-trips");

    let mut interrupted = false;
    for attempt in 0..5 {
        if kill_check_mid_run(&spec, &ckpt_dir, attempt) {
            interrupted = true;
            break;
        }
    }
    assert!(interrupted, "could not SIGKILL `simap check` mid-run in 5 attempts");

    let resume = ReachConfig { resume: Some(ckpt_dir.clone()), ..kill_check_config() };
    let manifest = ckpt_dir.join("MANIFEST");
    let pristine = std::fs::read(&manifest).expect("manifest readable");

    // One flipped bit in the middle of the manifest: refused by name.
    let mut bent = pristine.clone();
    let mid = bent.len() / 2;
    bent[mid] ^= 0x10;
    std::fs::write(&manifest, &bent).expect("rewrite manifest");
    let err = elaborate_with(&stg, &resume).expect_err("corrupt manifest must refuse");
    let text = err.to_string();
    assert!(
        matches!(err, ReachError::Checkpoint { .. }) && text.contains("MANIFEST"),
        "diagnostic must name the corrupt artifact: {text}"
    );

    // A mismatched exploration config (different shard count): refused
    // naming both digests so the operator sees what disagrees.
    std::fs::write(&manifest, &pristine).expect("restore manifest");
    let mismatched = ReachConfig { shards: 8, ..resume.clone() };
    let err = elaborate_with(&stg, &mismatched).expect_err("config mismatch must refuse");
    let text = err.to_string();
    assert!(
        matches!(err, ReachError::Checkpoint { .. })
            && text.contains("digest")
            && text.matches("0x").count() == 2,
        "diagnostic must name both config digests: {text}"
    );

    // Validation is non-destructive: the untouched checkpoint resumes.
    let (resumed, stats) = elaborate_with_stats(&stg, &resume).expect("pristine resume");
    assert!(stats.spill.expect("spill counters").resume_level >= 1);
    let oracle = elaborate_with(&stg, &ReachConfig::default()).expect("packed elaborates");
    assert_eq!(resumed.state_count(), oracle.state_count());
    for s in resumed.states() {
        assert_eq!(resumed.succ(s), oracle.succ(s), "successors of state {}", s.0);
    }
}

/// The default placement (no `spill_dir`) works and reports counters;
/// nothing of ours is left in the system temp dir afterwards.
#[test]
fn default_spill_placement_cleans_up() {
    let stg = benchmark("mr0").expect("known benchmark");
    let (_, stats) = elaborate_with_stats(&stg, &spill_config(1024 * 1024)).expect("elaborates");
    let counters = stats.spill.expect("spill counters");
    assert!(counters.spilled_bytes > 0);
    let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .expect("temp dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&format!("simap-spill-{}-", std::process::id())))
        .collect();
    assert_eq!(leftovers, Vec::<String>::new(), "run directories leaked in temp");
}
