//! Integration tests of the `simap serve` gateway over real TCP
//! sockets: API-key authentication (401/403), per-client rate limiting
//! (429 with `Retry-After`), the circuit breaker's open → half-open →
//! closed recovery (503 with `Retry-After`), and the persistent result
//! cache answering byte-identically across a server restart without
//! enqueueing any work.

use simap::core::json::{self, Json};
use simap::serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// One HTTP/1.1 request over a fresh connection, optionally carrying an
/// API key; returns (status, headers, body).
fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    key: Option<&str>,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let auth = key.map(|k| format!("X-Api-Key: {k}\r\n")).unwrap_or_default();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\n{auth}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    (status, headers, body.to_string())
}

fn header<'h>(headers: &'h [(String, String)], name: &str) -> Option<&'h str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

fn start(config: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig { addr: "127.0.0.1:0".to_string(), ..config })
        .expect("bind ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn stop(handle: ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// A scratch directory that cleans up after itself even on panic.
struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("simap-gw-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn metrics(addr: SocketAddr) -> Json {
    let (status, _, body) = http(addr, "GET", "/metrics", None, "");
    assert_eq!(status, 200, "{body}");
    json::parse(body.trim_end()).expect("metrics is JSON")
}

#[test]
fn keyed_mode_rejects_missing_unknown_and_blocked_keys() {
    let scratch = Scratch::new("auth");
    let keyfile = scratch.0.join("keys.tsv");
    std::fs::write(&keyfile, "k-alice\talice\tstandard\nk-mallory\tmallory\tblocked\n").unwrap();
    let (handle, join) =
        start(ServeConfig { jobs: 1, api_keys: Some(keyfile), ..ServeConfig::default() });
    let addr = handle.addr();

    // No key on a protected route: 401 naming both accepted header forms.
    let (status, _, body) = http(addr, "POST", "/synthesize", None, "{\"bench\":\"half\"}");
    assert_eq!(status, 401, "{body}");
    assert!(body.contains("Authorization") && body.contains("X-Api-Key"), "{body}");

    // An unknown key is 401; a blocked client's valid key is 403.
    let (status, _, body) =
        http(addr, "POST", "/synthesize", Some("k-wrong"), "{\"bench\":\"half\"}");
    assert_eq!(status, 401, "{body}");
    let (status, _, body) =
        http(addr, "POST", "/synthesize", Some("k-mallory"), "{\"bench\":\"half\"}");
    assert_eq!(status, 403, "{body}");
    assert!(body.contains("blocked"), "{body}");

    // A good key synthesizes; health and metrics never need one.
    let (status, _, body) =
        http(addr, "POST", "/synthesize", Some("k-alice"), "{\"bench\":\"half\"}");
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = http(addr, "GET", "/healthz", None, "");
    assert_eq!(status, 200);
    let doc = metrics(addr);
    let gateway = doc.get("gateway").expect("gateway section");
    assert_eq!(gateway.get("auth_mode").unwrap().as_str(), Some("keyed"));
    assert_eq!(gateway.get("api_keys").unwrap().as_usize(), Some(2));
    let auth = gateway.get("auth").expect("auth tallies");
    assert!(auth.get("rejected").unwrap().as_usize() >= Some(3), "{doc:?}");

    stop(handle, join);
}

#[test]
fn rate_limited_client_gets_429_with_retry_after() {
    let scratch = Scratch::new("rate");
    let keyfile = scratch.0.join("keys.tsv");
    std::fs::write(&keyfile, "k-frida\tfrida\tfree\n").unwrap();
    // Free tier at base 1 req/s: burst of exactly one token.
    let (handle, join) = start(ServeConfig {
        jobs: 1,
        api_keys: Some(keyfile),
        rate_limit: 1.0,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let (status, _, body) =
        http(addr, "POST", "/synthesize", Some("k-frida"), "{\"bench\":\"half\"}");
    assert_eq!(status, 200, "{body}");
    let (status, headers, body) =
        http(addr, "POST", "/synthesize", Some("k-frida"), "{\"bench\":\"half\"}");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("requests/sec"), "{body}");
    let retry: u64 = header(&headers, "retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is seconds");
    assert!(retry >= 1, "{retry}");

    // Poll routes queue no work, so the dry bucket does not block them.
    let (status, _, _) = http(addr, "GET", "/jobs/j999", Some("k-frida"), "");
    assert_eq!(status, 404, "poll is metered by quota, not the work bucket");

    stop(handle, join);
}

#[test]
fn breaker_opens_on_failures_and_recovers_through_a_probe() {
    let (handle, join) = start(ServeConfig {
        jobs: 1,
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_millis(700),
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Two flow failures inside the window trip the breaker.
    for _ in 0..2 {
        let (status, _, body) = http(addr, "POST", "/synthesize", None, "{\"bench\":\"nope\"}");
        assert_eq!(status, 422, "{body}");
    }
    let (status, headers, body) = http(addr, "POST", "/synthesize", None, "{\"bench\":\"half\"}");
    assert_eq!(status, 503, "{body}");
    assert!(header(&headers, "retry-after").is_some(), "503 carries Retry-After");
    let (_, _, health) = http(addr, "GET", "/healthz", None, "");
    assert!(health.contains("\"breaker\":\"open\""), "{health}");

    // After the cooldown the breaker half-opens; one successful probe
    // closes it again and work flows.
    std::thread::sleep(Duration::from_millis(900));
    let (_, _, health) = http(addr, "GET", "/healthz", None, "");
    assert!(health.contains("\"breaker\":\"half-open\""), "{health}");
    let (status, _, body) = http(addr, "POST", "/synthesize", None, "{\"bench\":\"half\"}");
    assert_eq!(status, 200, "the half-open probe is admitted: {body}");
    let (_, _, health) = http(addr, "GET", "/healthz", None, "");
    assert!(health.contains("\"breaker\":\"closed\""), "{health}");

    let doc = metrics(addr);
    assert!(doc.get("gateway").unwrap().get("breaker_opened").unwrap().as_usize() >= Some(1));
    assert!(doc.get("gateway").unwrap().get("breaker_shed").unwrap().as_usize() >= Some(1));

    stop(handle, join);
}

#[test]
fn restarted_server_answers_byte_identically_from_the_persistent_cache() {
    let scratch = Scratch::new("cache");
    let cache_dir = scratch.0.join("results");
    let config =
        || ServeConfig { jobs: 1, cache_dir: Some(cache_dir.clone()), ..ServeConfig::default() };

    // First instance synthesizes for real and stores the result.
    let (handle, join) = start(config());
    let (status, _, first) =
        http(handle.addr(), "POST", "/synthesize", None, "{\"bench\":\"half\"}");
    assert_eq!(status, 200, "{first}");
    let doc = metrics(handle.addr());
    let cache = doc.get("gateway").unwrap().get("rescache").expect("rescache section");
    assert_eq!(cache.get("stores").unwrap().as_usize(), Some(1), "{doc:?}");
    stop(handle, join);

    // A fresh instance on the same directory serves the cached bytes
    // without ever enqueueing a job.
    let (handle, join) = start(config());
    let (status, _, second) =
        http(handle.addr(), "POST", "/synthesize", None, "{\"bench\":\"half\"}");
    assert_eq!(status, 200, "{second}");
    assert_eq!(first.as_bytes(), second.as_bytes(), "cache hit must be byte-identical");
    let doc = metrics(handle.addr());
    let gateway = doc.get("gateway").unwrap();
    assert_eq!(gateway.get("rescache").unwrap().get("hits").unwrap().as_usize(), Some(1));
    assert_eq!(
        doc.get("queue").unwrap().get("submitted").unwrap().as_usize(),
        Some(0),
        "a warm hit never reaches the queue: {doc:?}"
    );
    // A config knob changes the fingerprint, so it misses and synthesizes.
    let (status, _, custom) = http(
        handle.addr(),
        "POST",
        "/synthesize",
        None,
        "{\"bench\":\"half\",\"literal_limit\":3}",
    );
    assert_eq!(status, 200, "{custom}");
    let doc = metrics(handle.addr());
    let cache = doc.get("gateway").unwrap().get("rescache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_usize(), Some(1), "{doc:?}");
    assert_eq!(cache.get("misses").unwrap().as_usize(), Some(1), "{doc:?}");
    stop(handle, join);
}
