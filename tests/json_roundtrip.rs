//! Property tests of the shared `simap_core::json` module: parse ∘ emit
//! is the identity on randomly generated JSON values — including strings
//! that need escaping (quotes, backslashes, control characters, astral
//! Unicode) — and emitted documents survive whitespace injection.

use proptest::prelude::*;
use simap::core::json::{self, Json};

/// Characters the string generator draws from: ASCII, everything the
/// emitter must escape, multi-byte UTF-8 and an astral-plane scalar
/// (which `\u` escapes encode as a surrogate pair).
const CHAR_POOL: [char; 16] = [
    'a', 'z', '0', ' ', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{8}', '\u{1f}', '/', 'é', 'Ω', '𝄞',
];

/// Deterministically folds a stream of draws into a JSON value. `fuel`
/// bounds both depth and fanout so cases stay small.
fn build(draws: &mut std::vec::IntoIter<u64>, depth: usize) -> Json {
    let draw = draws.next().unwrap_or(0);
    // At the depth limit only scalars are produced.
    let variants = if depth >= 4 { 5 } else { 7 };
    match draw % variants {
        0 => Json::Null,
        1 => Json::Bool(draw.is_multiple_of(2)),
        2 => Json::Int((draws.next().unwrap_or(0) as i64).wrapping_sub(i64::MAX / 2)),
        3 => Json::Int((draw % 1000) as i64),
        4 => {
            let len = (draws.next().unwrap_or(0) % 12) as usize;
            let s: String = (0..len)
                .map(|_| CHAR_POOL[(draws.next().unwrap_or(0) % CHAR_POOL.len() as u64) as usize])
                .collect();
            Json::Str(s)
        }
        5 => {
            let len = (draws.next().unwrap_or(0) % 4) as usize;
            Json::Array((0..len).map(|_| build(draws, depth + 1)).collect())
        }
        _ => {
            let len = (draws.next().unwrap_or(0) % 4) as usize;
            Json::Object(
                (0..len)
                    .map(|i| {
                        let key_char = CHAR_POOL
                            [(draws.next().unwrap_or(0) % CHAR_POOL.len() as u64) as usize];
                        (format!("k{i}{key_char}"), build(draws, depth + 1))
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(emit(v)) == v, and emit is a fixpoint after one round.
    #[test]
    fn parse_emit_round_trip(draws in proptest::collection::vec(0u64..u64::MAX, 64)) {
        let value = build(&mut draws.into_iter(), 0);
        let text = value.emit();
        let back = json::parse(&text)
            .unwrap_or_else(|e| panic!("emitted document failed to parse: {e}\n{text}"));
        prop_assert_eq!(&back, &value, "{}", text);
        prop_assert_eq!(back.emit(), text);
    }

    /// Whitespace between tokens never changes the parsed value.
    #[test]
    fn whitespace_injection_is_invisible(draws in proptest::collection::vec(0u64..u64::MAX, 48)) {
        let mut iter = draws.into_iter();
        let value = build(&mut iter, 0);
        let text = value.emit();
        // Inject whitespace after every structural token. Characters
        // inside strings must stay untouched, so track string state.
        let mut spaced = String::new();
        let mut in_string = false;
        let mut escaped = false;
        for c in text.chars() {
            spaced.push(c);
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
            } else if c == '"' {
                in_string = true;
            } else if matches!(c, '{' | '}' | '[' | ']' | ',' | ':') {
                spaced.push_str(" \t\n\r ");
            }
        }
        let parsed = json::parse(&spaced)
            .unwrap_or_else(|e| panic!("whitespace-injected document failed: {e}\n{spaced}"));
        prop_assert_eq!(parsed, value);
    }
}

/// The escaping corner cases called out by the satellite task, pinned
/// explicitly (the generators above also hit them statistically).
#[test]
fn escape_corner_cases_round_trip() {
    for s in [
        "quote \" backslash \\",
        "\\\\\"\\\"",
        "newline\ntab\tcarriage\r",
        "\u{0}\u{1}\u{2}\u{1f}",
        "mixed é Ω 𝄞 \" \\ \n",
        "",
        "ends with backslash \\",
    ] {
        let value = Json::Str(s.to_string());
        let text = value.emit();
        assert_eq!(json::parse(&text).unwrap(), value, "{text}");
    }
}

/// Emitted flow reports and batch documents parse back losslessly — the
/// emitters and the parser agree on the real payloads the service moves.
#[test]
fn real_report_documents_round_trip() {
    let engine = simap::Engine::default();
    let report = engine.synthesize("hazard").expect("flow runs");
    let doc = simap::core::report_json(&report);
    let parsed = json::parse(&doc).expect("report_json parses");
    assert_eq!(parsed.emit(), doc, "parse ∘ emit must be the identity on report_json");

    let rows = engine.batch(["half", "hazard"]).limits([2, 3]).run().expect("batch");
    let doc = simap::core::to_json(&[2, 3], &rows);
    let parsed = json::parse(&doc).expect("to_json parses");
    assert_eq!(parsed.emit(), doc, "parse ∘ emit must be the identity on to_json");

    let doc = simap::core::benchmarks_json(&engine).expect("listing");
    let parsed = json::parse(&doc).expect("benchmarks_json parses");
    assert_eq!(parsed.emit(), doc);
}
