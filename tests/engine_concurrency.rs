//! Concurrency torture of the shared [`simap::Engine`]: many threads
//! hammering one engine over mixed benchmarks and configurations must
//! produce reports byte-identical to a sequential baseline, while the
//! elaboration-cache counters stay sane and monotone.

use simap::core::report_json;
use simap::{Config, Engine};
use std::collections::HashMap;

const BENCHES: [&str; 4] = ["half", "hazard", "dff", "chu133"];
const LIMITS: [usize; 2] = [2, 3];
const THREADS: usize = 8;
const ROUNDS: usize = 2;

fn config_at(limit: usize) -> Config {
    Config::builder().literal_limit(limit).verify(false).build().expect("valid")
}

#[test]
fn threads_hammering_one_engine_match_sequential_reports() {
    // Sequential baseline on a fresh engine.
    let baseline_engine = Engine::new(config_at(2));
    let mut baseline: HashMap<(&str, usize), String> = HashMap::new();
    for name in BENCHES {
        for limit in LIMITS {
            let report = baseline_engine
                .with_config(config_at(limit))
                .synthesize(name)
                .expect("baseline run");
            baseline.insert((name, limit), report_json(&report));
        }
    }

    // The hammered engine. Every thread mixes benchmarks, limits and
    // repeat rounds; the (hits, misses) counters must be monotone from
    // every thread's point of view.
    let engine = Engine::new(config_at(2));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let engine = engine.clone();
            let baseline = &baseline;
            scope.spawn(move || {
                let mut last = engine.cache_stats();
                for round in 0..ROUNDS {
                    // Interleave differently per thread so benchmarks and
                    // limits race in all orders.
                    for step in 0..BENCHES.len() * LIMITS.len() {
                        let i = (step + t + round) % BENCHES.len();
                        let limit = LIMITS[(step + t) % LIMITS.len()];
                        let name = BENCHES[i];
                        let report = engine
                            .with_config(config_at(limit))
                            .synthesize(name)
                            .expect("concurrent run");
                        assert_eq!(
                            report_json(&report),
                            baseline[&(name, limit)],
                            "{name}@{limit} diverged under concurrency (thread {t})"
                        );
                        let stats = engine.cache_stats();
                        assert!(stats.hits >= last.hits, "hits ran backwards: {stats:?} {last:?}");
                        assert!(
                            stats.misses >= last.misses,
                            "misses ran backwards: {stats:?} {last:?}"
                        );
                        assert!(
                            stats.hits + stats.misses > last.hits + last.misses,
                            "this thread's own elaboration must be counted"
                        );
                        last = stats;
                    }
                }
            });
        }
    });

    let total_runs = (THREADS * ROUNDS * BENCHES.len() * LIMITS.len()) as u64;
    let stats = engine.cache_stats();
    // Every elaboration was either a hit or a (stored) miss.
    assert_eq!(stats.hits + stats.misses, total_runs, "{stats:?}");
    // The literal limit is not part of the elaboration key, so the
    // distinct entries are exactly the benchmarks.
    assert_eq!(stats.entries, BENCHES.len(), "{stats:?}");
    // Lookup+store is not one atomic section, so concurrent first visits
    // may each miss — but never more than one miss per (thread, key).
    assert!(stats.misses >= BENCHES.len() as u64, "{stats:?}");
    assert!(stats.misses <= (THREADS * BENCHES.len()) as u64, "{stats:?}");
    assert!(stats.hits >= total_runs - (THREADS * BENCHES.len()) as u64, "{stats:?}");
}

#[test]
fn mixed_strategies_share_the_engine_without_cross_talk() {
    use simap::ReachStrategy;
    let engine = Engine::new(config_at(2));
    let strategies = [ReachStrategy::Packed, ReachStrategy::Explicit, ReachStrategy::Symbolic];
    let reference: Vec<String> = strategies
        .iter()
        .map(|&s| {
            let config = Config::builder().reach_strategy(s).verify(false).build().unwrap();
            report_json(&engine.with_config(config).synthesize("hazard").unwrap())
        })
        .collect();
    // All three strategies produce the same graph, costs and counts; only
    // the reported strategy name differs.
    for window in reference.windows(2) {
        let strip = |s: &str| s.split("\"strategy\"").next().unwrap().to_string();
        assert_eq!(strip(&window[0]), strip(&window[1]));
    }
    std::thread::scope(|scope| {
        for t in 0..6 {
            let engine = engine.clone();
            let reference = &reference;
            scope.spawn(move || {
                for i in 0..6 {
                    let s = strategies[(t + i) % strategies.len()];
                    let config = Config::builder().reach_strategy(s).verify(false).build().unwrap();
                    let report = engine.with_config(config).synthesize("hazard").unwrap();
                    assert_eq!(
                        report_json(&report),
                        reference[(t + i) % strategies.len()],
                        "strategy {s} report diverged under concurrency"
                    );
                }
            });
        }
    });
    // One cache entry per strategy (strategy is part of the key).
    assert_eq!(engine.cache_stats().entries, strategies.len());
}
