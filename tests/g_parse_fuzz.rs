//! Fuzz-style robustness harness for the `.g` parser: mutated, truncated
//! and adversarial spec text must never panic `parse_g`, every rejection
//! must carry a plausible line/column, and `parse_g ∘ write_g` must be
//! the identity (from the second trip, once ids are canonical) on every
//! net the generators produce — and on anything a mutated spec tricks the
//! parser into accepting.
//!
//! The case count is environment-tunable so CI can turn the crank harder
//! than a developer's `cargo test`:
//!
//! ```text
//! SIMAP_FUZZ_CASES=256 cargo test --release --test g_parse_fuzz
//! ```

use proptest::prelude::*;
use simap::stg::{parse_g, patterns, write_g, ParseStgError};

/// Cases per property, from `SIMAP_FUZZ_CASES` (default 64).
fn fuzz_cases() -> u32 {
    std::env::var("SIMAP_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
}

/// Fragments chosen to poke every rejection path: run-on directives,
/// stray section tokens, marking syntax debris and near-miss transitions.
const JUNK: &[&str] = &[
    ".inputsx y\n",
    ".graph2\n",
    ".graph junk\n",
    ".dummy e\n",
    ".marking { p }\n",
    ".marking {\n",
    ".end junk\n",
    ".inputs\n",
    "....\n",
    "a+/4294967296 a-\n",
    "a+ zz+\n",
    "p q\n",
    "p=256 ",
    "<a+,b+> ",
    "=3 ",
    "\u{0}",
    "# comment\n",
    "\t \t",
];

/// An error is plausible when it names a line the source actually has
/// (line 0 only for empty input) and a column inside that line.
fn assert_plausible(source: &str, e: &ParseStgError) {
    let lines = source.lines().count();
    assert!(!e.message.is_empty(), "empty message: {e:?}");
    assert!(e.line <= lines, "line {} of {lines}-line source: {e} in {source:?}", e.line);
    if e.line == 0 {
        assert_eq!(lines, 0, "line 0 is reserved for empty input: {e} in {source:?}");
    }
    if e.column > 0 {
        let raw = source.lines().nth(e.line - 1).expect("line checked above");
        assert!(
            e.column <= raw.len() + 1,
            "col {} of {}-byte line {:?}: {e}",
            e.column,
            raw.len(),
            raw
        );
    }
}

/// Parses arbitrary text; a rejection must be plausible and an accepted
/// net must survive the write→parse→write fixpoint check.
fn check(source: &str) {
    match parse_g(source) {
        Err(e) => assert_plausible(source, &e),
        Ok(stg) => assert_second_trip_identity(&stg),
    }
}

/// Whatever the parser accepts, the writer must express in a form the
/// parser accepts again — and from the second trip (ids canonical) the
/// text must be a fixpoint, byte for byte.
fn assert_second_trip_identity(stg: &simap::stg::Stg) {
    let t1 = write_g(stg);
    let s2 = parse_g(&t1).unwrap_or_else(|e| panic!("writer output must reparse: {e}\n{t1}"));
    let t2 = write_g(&s2);
    let s3 = parse_g(&t2).unwrap_or_else(|e| panic!("second trip must reparse: {e}\n{t2}"));
    assert_eq!(write_g(&s3), t2, "second trip must be a byte fixpoint");
    assert_eq!(s2.signals().len(), stg.signals().len());
    assert_eq!(s2.transitions().len(), stg.transitions().len());
    assert_eq!(s2.places().len(), stg.places().len());
}

/// Byte offsets where each line of `bytes` starts.
fn line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Applies one seeded mutation: truncation, byte overwrite (ASCII or
/// invalid UTF-8), junk insertion, line duplication or line deletion.
fn mutate(bytes: &mut Vec<u8>, op: u64) {
    let pos = (op >> 8) as usize;
    let pick = (op >> 40) as usize;
    match op % 6 {
        0 => {
            if !bytes.is_empty() {
                let cut = pos % (bytes.len() + 1);
                bytes.truncate(cut);
            }
        }
        1 => {
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] = (pick % 128) as u8;
            }
        }
        2 => {
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] = 0x80 + (pick % 0x80) as u8;
            }
        }
        3 => {
            let i = pos % (bytes.len() + 1);
            let junk = JUNK[pick % JUNK.len()];
            bytes.splice(i..i, junk.bytes());
        }
        4 => {
            let starts = line_starts(bytes);
            let k = pos % starts.len();
            let end = starts.get(k + 1).copied().unwrap_or(bytes.len());
            let line: Vec<u8> = bytes[starts[k]..end].to_vec();
            bytes.splice(starts[k]..starts[k], line);
        }
        5 => {
            let starts = line_starts(bytes);
            let k = pos % starts.len();
            let end = starts.get(k + 1).copied().unwrap_or(bytes.len());
            bytes.drain(starts[k]..end);
        }
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    /// Corpus specs with a handful of seeded mutations applied: the
    /// parser never panics, rejections point into the source, and
    /// anything still accepted round-trips.
    #[test]
    fn mutated_corpus_text_never_panics(
        seed in 0u64..1 << 48,
        index in 0u64..1 << 12,
        ops in collection::vec(0u64..u64::MAX, 1..8),
    ) {
        let net = patterns::corpus_net(seed, index);
        let mut bytes = write_g(&net).into_bytes();
        for &op in &ops {
            mutate(&mut bytes, op);
        }
        let source = String::from_utf8_lossy(&bytes).into_owned();
        check(&source);
    }

    /// Pure ASCII soup (controls included) is handled gracefully too.
    #[test]
    fn arbitrary_ascii_never_panics(soup in collection::vec(0u8..128, 0..512)) {
        let source = String::from_utf8_lossy(&soup).into_owned();
        check(&source);
    }

    /// Every generator-produced net parses back and reaches the byte
    /// fixpoint — the property `POST /stg` and `simap gen` lean on.
    #[test]
    fn generator_nets_roundtrip_exactly(seed in 0u64..1 << 48, index in 0u64..1 << 16) {
        let net = patterns::corpus_net(seed, index);
        assert_second_trip_identity(&net);
    }
}

/// Every byte-boundary truncation of a valid spec parses or fails with
/// an in-range position — no panics on mid-token, mid-section cuts.
#[test]
fn every_truncation_of_a_valid_spec_is_handled() {
    let text = write_g(&patterns::corpus_net(7, 3));
    for cut in 0..=text.len() {
        if text.is_char_boundary(cut) {
            check(&text[..cut]);
        }
    }
}

/// The fixed adversarial fragments (alone and pairwise concatenated)
/// exercise the rejection paths deterministically, independent of the
/// seeded sweep above.
#[test]
fn adversarial_fragments_are_rejected_gracefully() {
    let header = ".inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n";
    for &junk in JUNK {
        check(junk);
        check(&format!("{header}{junk}.marking {{ <b-,a+> }}\n.end\n"));
        for &other in JUNK {
            check(&format!("{junk}{other}"));
        }
    }
}

/// CRLF line endings and a missing trailing newline both parse, and
/// errors in them still carry sensible lines.
#[test]
fn crlf_and_unterminated_sources() {
    let crlf =
        ".model m\r\n.inputs a\r\n.graph\r\na+ a-\r\na- a+\r\n.marking { <a-,a+> }\r\n.end\r\n";
    parse_g(crlf).expect("CRLF specs parse");
    let unterminated = ".inputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.end";
    parse_g(unterminated).expect("missing trailing newline is fine");
    let e = parse_g(".inputs a\r\n.graphx\r\n").unwrap_err();
    assert_plausible(".inputs a\r\n.graphx\r\n", &e);
    assert_eq!(e.line, 2);
}
