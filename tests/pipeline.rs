//! Integration tests of the staged `Synthesis` pipeline: the typed error
//! paths (unknown benchmark, parse failure, CSC violation with repair
//! off, CSC repair failure, verification failure), the equivalence of the
//! staged and one-shot drivers, observer delivery and the deprecated
//! `run_flow` shim.

use simap::sg::{Event, Signal, SignalId, SignalKind, StateGraph, StateGraphBuilder};
use simap::{Batch, Error, Stage, Synthesis};

/// a+ ; b+ ; b- ; a- over two *output* signals: the textbook CSC
/// conflict, repairable by one internal state signal.
fn conflicted(kind: SignalKind) -> StateGraph {
    let mut bd =
        StateGraphBuilder::new("csc-demo", vec![Signal::new("a", kind), Signal::new("b", kind)])
            .unwrap();
    let s0 = bd.add_state(0b00);
    let s1 = bd.add_state(0b01);
    let s2 = bd.add_state(0b11);
    let s3 = bd.add_state(0b01);
    bd.add_arc(s0, Event::rise(SignalId(0)), s1);
    bd.add_arc(s1, Event::rise(SignalId(1)), s2);
    bd.add_arc(s2, Event::fall(SignalId(1)), s3);
    bd.add_arc(s3, Event::fall(SignalId(0)), s0);
    bd.build(s0).unwrap()
}

/// A non-persistent specification: input `a+` disables output `b+` at the
/// initial state. Covers still synthesize, but the mapped circuit has a
/// hazard the verifier must refute.
fn non_persistent() -> StateGraph {
    let mut bd = StateGraphBuilder::new(
        "hazardous",
        vec![Signal::new("a", SignalKind::Input), Signal::new("b", SignalKind::Output)],
    )
    .unwrap();
    let s0 = bd.add_state(0b00);
    let s1 = bd.add_state(0b01); // a high, b+ no longer enabled
    let s2 = bd.add_state(0b10); // b high
    bd.add_arc(s0, Event::rise(SignalId(0)), s1);
    bd.add_arc(s1, Event::fall(SignalId(0)), s0);
    bd.add_arc(s0, Event::rise(SignalId(1)), s2);
    bd.add_arc(s2, Event::fall(SignalId(1)), s0);
    bd.build(s0).unwrap()
}

#[test]
fn unknown_benchmark_error() {
    let err = Synthesis::from_benchmark("not-a-circuit").run().unwrap_err();
    assert!(matches!(err, Error::UnknownBenchmark { ref name } if name == "not-a-circuit"));
    assert_eq!(err.stage(), Stage::Load);
    assert!(err.to_string().contains("[load]"), "{err}");
}

#[test]
fn parse_error_carries_line() {
    let err = Synthesis::from_g_source(".model x\n.inputs a\n.garbage\n").run().unwrap_err();
    let Error::Parse(inner) = &err else { panic!("expected Parse, got {err}") };
    assert!(inner.line > 0);
    assert_eq!(err.stage(), Stage::Load);
    // The crate-level error remains reachable through source().
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn csc_violation_with_repair_off() {
    let err = Synthesis::from_state_graph(conflicted(SignalKind::Output))
        .elaborate()
        .expect("elaboration itself succeeds")
        .covers()
        .unwrap_err();
    let Error::CscViolation { ref signal, ref conflicts, .. } = err else {
        panic!("expected CscViolation, got {err}");
    };
    assert!(!signal.is_empty());
    assert!(!conflicts.is_empty(), "the original conflict list must be attached");
    assert_eq!(err.stage(), Stage::Covers);
    assert_eq!(err.csc_conflicts().len(), conflicts.len());
}

#[test]
fn csc_repair_failure_surfaces_conflicts() {
    // A zero insertion budget makes the (otherwise repairable) conflict
    // unrepairable — and the error must carry the original conflicts
    // instead of being swallowed (the historic run_flow fallback).
    use simap::core::CscRepairConfig;
    let starved = simap::Config::builder()
        .repair_csc(true)
        .csc_repair_config(CscRepairConfig { max_insertions: 0 })
        .build()
        .unwrap();
    let err = Synthesis::from_state_graph(conflicted(SignalKind::Output))
        .config(&starved)
        .elaborate()
        .unwrap_err();
    let Error::CscRepairFailed { ref conflicts, .. } = err else {
        panic!("expected CscRepairFailed, got {err}");
    };
    assert!(!conflicts.is_empty(), "the original conflict list must be attached");
    assert_eq!(err.stage(), Stage::Elaborate);
    assert!(std::error::Error::source(&err).is_some(), "repair error is the source");
}

#[test]
fn verification_failure_is_typed() {
    let mapped = Synthesis::from_state_graph(non_persistent())
        .elaborate()
        .expect("elaborates")
        .covers()
        .expect("covers exist despite non-persistency")
        .decompose()
        .expect("nothing to decompose")
        .map();
    let err = mapped.verify().unwrap_err();
    assert!(matches!(err, Error::Verify { .. }), "expected Verify, got {err}");
    assert_eq!(err.stage(), Stage::Verify);
}

#[test]
fn run_reports_refutation_compatibly() {
    // The one-shot driver keeps the historical FlowReport contract:
    // refutation is data (`verified == Some(false)`), not an error.
    let report = Synthesis::from_state_graph(non_persistent()).run().expect("runs");
    assert_eq!(report.verified, Some(false));
}

#[test]
fn staged_matches_one_shot_on_benchmarks() {
    for name in ["half", "hazard", "chu133"] {
        let one_shot = Synthesis::from_benchmark(name).run().unwrap();
        let staged = Synthesis::from_benchmark(name)
            .elaborate()
            .unwrap()
            .covers()
            .unwrap()
            .decompose()
            .unwrap()
            .map()
            .verify()
            .unwrap()
            .into_report();
        assert_eq!(one_shot.inserted, staged.inserted, "{name}");
        assert_eq!(one_shot.inserted_names, staged.inserted_names, "{name}");
        assert_eq!(one_shot.si_cost, staged.si_cost, "{name}");
        assert_eq!(one_shot.non_si_cost, staged.non_si_cost, "{name}");
        assert_eq!(one_shot.verified, staged.verified, "{name}");
        assert_eq!(one_shot.initial_histogram, staged.initial_histogram, "{name}");
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_run_flow_still_works() {
    use simap::core::{run_flow, FlowConfig};
    let stg = simap::stg::benchmark("hazard").expect("known");
    let sg = simap::stg::elaborate(&stg).expect("elaborates");
    let old = run_flow(&sg, &FlowConfig::with_limit(2)).expect("flow");
    let new = Synthesis::from_state_graph(sg).run().expect("flow");
    assert_eq!(old.inserted, new.inserted);
    assert_eq!(old.si_cost, new.si_cost);
    assert_eq!(old.verified, new.verified);
}

#[test]
#[allow(deprecated)]
fn deprecated_run_flow_keeps_csc_contract() {
    use simap::core::{run_flow, FlowConfig, McError};
    // Repair off: the CSC conflict arrives as the old McError.
    let sg = conflicted(SignalKind::Output);
    let err = run_flow(&sg, &FlowConfig::with_limit(2)).unwrap_err();
    assert!(matches!(err, McError::CscConflict { .. }));

    // Repair on and possible: the shim repairs and completes, as the old
    // entry point did.
    let mut config = FlowConfig::with_limit(2);
    config.repair_csc = true;
    let report = run_flow(&sg, &config).expect("repairs and flows");
    assert_eq!(report.verified, Some(true));
}

#[test]
fn observer_streams_progress() {
    use simap::core::DecomposeStep;
    use simap::FlowObserver;
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Log {
        stages: Vec<Stage>,
        ends: Vec<Stage>,
        steps: usize,
        verdict: Option<Option<bool>>,
    }
    struct Obs(Arc<Mutex<Log>>);
    impl FlowObserver for Obs {
        fn on_stage_start(&mut self, stage: Stage, _spec: &str) {
            self.0.lock().unwrap().stages.push(stage);
        }
        fn on_stage_end(&mut self, stage: Stage) {
            self.0.lock().unwrap().ends.push(stage);
        }
        fn on_decompose_step(&mut self, _step: &DecomposeStep) {
            self.0.lock().unwrap().steps += 1;
        }
        fn on_verdict(&mut self, verified: Option<bool>) {
            self.0.lock().unwrap().verdict = Some(verified);
        }
    }

    let log = Arc::new(Mutex::new(Log::default()));
    let report =
        Synthesis::from_benchmark("hazard").observer(Obs(log.clone())).run().expect("flow");
    let log = log.lock().unwrap();
    assert_eq!(log.steps, report.inserted.unwrap());
    assert_eq!(log.verdict, Some(Some(true)));
    let expected = [Stage::Load, Stage::Elaborate, Stage::Covers, Stage::Decompose, Stage::Map];
    for stage in expected {
        assert!(log.stages.contains(&stage), "missing stage {stage}");
    }
    // Every started stage ends, even on the verify path.
    assert_eq!(log.stages, log.ends, "stage starts and ends must pair up");
    assert!(log.ends.contains(&Stage::Verify));
}

#[test]
fn observer_stages_balance_on_refutation() {
    use simap::FlowObserver;
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Counts {
        starts: usize,
        ends: usize,
    }
    struct Obs(Arc<Mutex<Counts>>);
    impl FlowObserver for Obs {
        fn on_stage_start(&mut self, _stage: Stage, _spec: &str) {
            self.0.lock().unwrap().starts += 1;
        }
        fn on_stage_end(&mut self, _stage: Stage) {
            self.0.lock().unwrap().ends += 1;
        }
    }

    let counts = Arc::new(Mutex::new(Counts::default()));
    let err = Synthesis::from_state_graph(non_persistent())
        .observer(Obs(counts.clone()))
        .elaborate()
        .unwrap()
        .covers()
        .unwrap()
        .decompose()
        .unwrap()
        .map()
        .verify()
        .unwrap_err();
    assert!(matches!(err, Error::Verify { .. }));
    let counts = counts.lock().unwrap();
    assert_eq!(counts.starts, counts.ends, "stages must balance even when verify errors");
}

#[test]
fn verify_compat_reports_refutation_as_data() {
    let verified = Synthesis::from_state_graph(non_persistent())
        .elaborate()
        .unwrap()
        .covers()
        .unwrap()
        .decompose()
        .unwrap()
        .map()
        .verify_compat();
    assert_eq!(verified.verdict(), Some(false));
    assert!(!verified.circuit().gates().is_empty(), "the netlist stays exportable");
}

#[test]
fn batch_drives_multiple_benchmarks() {
    let rows = Batch::over_benchmarks(["half", "dff"]).limits([2, 3]).run().expect("batch");
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.reports.len(), 2);
        assert!(row.reports.iter().all(|r| r.verified == Some(true)), "{}", row.name);
    }
    // The emitters accept batch rows directly.
    let md = simap::core::to_markdown(&[2, 3], &rows);
    assert!(md.contains("| half |") && md.contains("| dff |"), "{md}");
}
