//! Integration tests of `simap serve` over a real TCP socket: responses
//! byte-identical to the CLI's `--json` output, ≥4 concurrent clients
//! sharing one warm engine, queue-full backpressure (429), async job
//! polling, NDJSON streaming, `/metrics` accounting and graceful
//! shutdown.

use simap::core::json::{self, Json};
use simap::serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::Command;
use std::time::{Duration, Instant};

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {response:?}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn start(
    jobs: usize,
    queue_limit: usize,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        queue_limit,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

fn poll_until_finished(addr: SocketAddr, job: &str) -> Json {
    let deadline = Instant::now() + Duration::from_secs(600);
    loop {
        let (status, body) = http(addr, "GET", &format!("/jobs/{job}"), "");
        assert_eq!(status, 200, "{body}");
        let doc = json::parse(body.trim_end()).expect("job status is JSON");
        match doc.get("status").and_then(Json::as_str) {
            Some("done") | Some("failed") => return doc,
            _ => {
                assert!(Instant::now() < deadline, "job {job} never finished");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn simap_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simap")).args(args).output().expect("binary runs")
}

#[test]
fn synthesize_and_batch_are_byte_identical_to_the_cli() {
    let (handle, join) = start(2, 16);
    let addr = handle.addr();

    // POST /synthesize == `simap map --bench half --json` (stdout bytes,
    // including the trailing newline), at the default and a custom limit.
    let (status, body) = http(addr, "POST", "/synthesize", "{\"bench\":\"half\"}");
    assert_eq!(status, 200, "{body}");
    let cli = simap_cli(&["map", "--bench", "half", "--json"]);
    assert_eq!(body.as_bytes(), &cli.stdout[..], "serve response != CLI stdout");

    let (status, body) =
        http(addr, "POST", "/synthesize", "{\"bench\":\"hazard\",\"literal_limit\":3}");
    assert_eq!(status, 200, "{body}");
    let cli = simap_cli(&["map", "--bench", "hazard", "--json", "--limit", "3"]);
    assert_eq!(body.as_bytes(), &cli.stdout[..]);

    // POST /batch == `simap bench run --json`.
    let (status, body) = http(
        addr,
        "POST",
        "/batch",
        "{\"names\":[\"half\",\"hazard\"],\"limits\":[2],\"verify\":false}",
    );
    assert_eq!(status, 200, "{body}");
    let cli =
        simap_cli(&["bench", "run", "half", "hazard", "--limits", "2", "--no-verify", "--json"]);
    assert_eq!(body.as_bytes(), &cli.stdout[..], "batch response != CLI stdout");

    // GET /benchmarks == `simap bench list --json`.
    let (status, body) = http(addr, "GET", "/benchmarks", "");
    assert_eq!(status, 200);
    let cli = simap_cli(&["bench", "list", "--json"]);
    assert_eq!(body.as_bytes(), &cli.stdout[..], "benchmark listing != CLI stdout");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_share_one_warm_engine() {
    let (handle, join) = start(4, 64);
    let addr = handle.addr();
    let benches = ["half", "hazard", "dff", "chu133"];

    // Reference bodies, sequentially (also warms the shared engine).
    let mut reference = Vec::new();
    for name in benches {
        let (status, body) =
            http(addr, "POST", "/synthesize", &format!("{{\"bench\":\"{name}\"}}"));
        assert_eq!(status, 200, "{body}");
        reference.push(body);
    }

    // Six concurrent clients, each hammering every benchmark twice: every
    // response must be byte-identical to the sequential reference.
    std::thread::scope(|scope| {
        for _client in 0..6 {
            scope.spawn(|| {
                for _round in 0..2 {
                    for (i, name) in benches.iter().enumerate() {
                        let (status, body) =
                            http(addr, "POST", "/synthesize", &format!("{{\"bench\":\"{name}\"}}"));
                        assert_eq!(status, 200, "{body}");
                        assert_eq!(body, reference[i], "response for {name} diverged");
                    }
                }
            });
        }
    });

    // The shared engine answered the repeats from its elaboration cache.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let doc = json::parse(metrics.trim_end()).expect("metrics is JSON");
    let engine = doc.get("engine").expect("engine section");
    let hits = engine.get("hits").and_then(Json::as_usize).unwrap();
    let misses = engine.get("misses").and_then(Json::as_usize).unwrap();
    assert!(hits >= 6 * 2 * benches.len(), "cache hits {hits} too low");
    assert!(misses <= benches.len() + 4, "misses {misses} should be ~one per benchmark");
    // Request accounting and stage latency histograms are populated.
    let requests = doc.get("requests").expect("requests section");
    let synth = requests.get("by_endpoint").unwrap().get("synthesize").unwrap().as_usize().unwrap();
    assert_eq!(synth, 4 + 6 * 2 * benches.len());
    let stage = doc.get("stage_latency_us").expect("stage histograms");
    for required in ["elaborate", "covers", "decompose", "map", "verify"] {
        let hist = stage.get(required).unwrap_or_else(|| panic!("no {required} histogram"));
        assert!(hist.get("count").and_then(Json::as_usize).unwrap() > 0);
    }

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn full_queue_backpressure_is_429() {
    // One worker, queue of one: occupy the worker with a slow batch, park
    // a second job in the queue, and the third submission must bounce.
    let (handle, join) = start(1, 1);
    let addr = handle.addr();

    let (status, accepted) = http(
        addr,
        "POST",
        "/batch",
        "{\"names\":[\"mr1\",\"tsend-bm\"],\"limits\":[2,3],\"verify\":false,\"async\":true}",
    );
    assert_eq!(status, 202, "{accepted}");
    let blocker = json::parse(accepted.trim_end())
        .unwrap()
        .get("job")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Wait until the worker has actually claimed the blocker, so the
    // queue is empty and the next submission deterministically parks.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = http(addr, "GET", &format!("/jobs/{blocker}"), "");
        let status = json::parse(body.trim_end())
            .unwrap()
            .get("status")
            .and_then(Json::as_str)
            .map(str::to_string);
        match status.as_deref() {
            Some("running") => break,
            Some("done") | Some("failed") => panic!("blocker finished too early: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "blocker never started");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    let (status, parked) = http(addr, "POST", "/synthesize", "{\"bench\":\"half\",\"async\":true}");
    assert_eq!(status, 202, "{parked}");
    let parked = json::parse(parked.trim_end())
        .unwrap()
        .get("job")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let (status, rejected) =
        http(addr, "POST", "/synthesize", "{\"bench\":\"half\",\"async\":true}");
    assert_eq!(status, 429, "{rejected}");
    let rejected = json::parse(rejected.trim_end()).unwrap();
    assert_eq!(rejected.get("error").and_then(Json::as_str), Some("queue full"));
    assert_eq!(rejected.get("queue_limit").and_then(Json::as_usize), Some(1));

    // Everything accepted still completes; the rejection is counted.
    let blocker_done = poll_until_finished(addr, &blocker);
    assert_eq!(blocker_done.get("status").and_then(Json::as_str), Some("done"));
    let parked_done = poll_until_finished(addr, &parked);
    assert_eq!(parked_done.get("status").and_then(Json::as_str), Some("done"));
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    let doc = json::parse(metrics.trim_end()).unwrap();
    let queue = doc.get("queue").unwrap();
    assert!(queue.get("rejected").and_then(Json::as_usize).unwrap() >= 1);
    assert_eq!(queue.get("limit").and_then(Json::as_usize), Some(1));

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn async_polling_matches_the_sync_body_and_unknown_jobs_404() {
    let (handle, join) = start(2, 8);
    let addr = handle.addr();

    let (_, sync_body) = http(addr, "POST", "/synthesize", "{\"bench\":\"dff\"}");
    let (status, accepted) =
        http(addr, "POST", "/synthesize", "{\"bench\":\"dff\",\"async\":true}");
    assert_eq!(status, 202);
    let job = json::parse(accepted.trim_end())
        .unwrap()
        .get("job")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let done = poll_until_finished(addr, &job);
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(done.get("result").unwrap().emit() + "\n", sync_body);

    let (status, _) = http(addr, "GET", "/jobs/j424242", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/jobs/garbage", "");
    assert_eq!(status, 404);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn streaming_mode_forwards_flow_events_as_ndjson() {
    let (handle, join) = start(1, 8);
    let addr = handle.addr();

    let (_, sync_body) = http(addr, "POST", "/synthesize", "{\"bench\":\"hazard\"}");
    let (status, body) =
        http(addr, "POST", "/synthesize", "{\"bench\":\"hazard\",\"stream\":true}");
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() >= 4, "expected a stream of events, got {body:?}");
    for line in &lines {
        let doc = json::parse(line).unwrap_or_else(|e| panic!("bad NDJSON line {line:?}: {e}"));
        assert!(doc.get("event").is_some(), "{line}");
    }
    // The gateway's decision trail leads the stream, then the job id,
    // then the flow's own events.
    let job_at = lines
        .iter()
        .position(|l| l.contains("\"event\":\"job\""))
        .unwrap_or_else(|| panic!("no job event in {body:?}"));
    assert!(job_at >= 1, "gateway decisions precede the job line: {body:?}");
    for line in &lines[..job_at] {
        let doc = json::parse(line).unwrap();
        assert_eq!(doc.get("event").and_then(Json::as_str), Some("gateway"), "{line}");
    }
    let next = json::parse(lines[job_at + 1]).unwrap();
    assert_eq!(next.get("event").and_then(Json::as_str), Some("stage_start"));
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"step\"")),
        "hazard inserts a signal, so a step event must stream: {body:?}"
    );
    let last = json::parse(lines[lines.len() - 1]).unwrap();
    assert_eq!(last.get("event").and_then(Json::as_str), Some("report"));
    assert_eq!(last.get("report").unwrap().emit() + "\n", sync_body);

    // A failing flow streams a terminal error event.
    let (status, body) =
        http(addr, "POST", "/synthesize", "{\"bench\":\"no-such\",\"stream\":true}");
    assert_eq!(status, 200, "stream mode commits the status before running");
    let last = body.lines().last().expect("at least the job line");
    let doc = json::parse(last).unwrap();
    assert_eq!(doc.get("event").and_then(Json::as_str), Some("error"), "{body:?}");

    handle.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn graceful_shutdown_drains_and_stops_accepting() {
    let (handle, join) = start(1, 8);
    let addr = handle.addr();
    let (status, _) = http(addr, "POST", "/synthesize", "{\"bench\":\"half\"}");
    assert_eq!(status, 200);
    handle.shutdown();
    handle.shutdown(); // idempotent
    join.join().unwrap().unwrap();
    // The listener is gone: connecting (or requesting) now fails.
    assert!(
        TcpStream::connect(addr).is_err()
            || std::panic::catch_unwind(|| http(addr, "GET", "/healthz", "")).is_err(),
        "server must stop serving after shutdown"
    );
}

#[test]
fn malformed_requests_do_not_wedge_the_server() {
    let (handle, join) = start(1, 8);
    let addr = handle.addr();

    // Raw garbage instead of HTTP.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"garbage\r\n\r\n").unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 400"), "{response:?}");

    // Bad JSON body.
    let (status, body) = http(addr, "POST", "/synthesize", "{not json");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid JSON"), "{body}");

    // The server still answers real requests afterwards.
    let (status, _) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    handle.shutdown();
    join.join().unwrap().unwrap();
}
