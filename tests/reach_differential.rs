//! Differential testing of the packed-state reachability engine against
//! the explicit oracle: for random safe STGs, every registry benchmark,
//! and every error family (unbounded, state limit, inconsistency), the
//! `Packed` and `Explicit` strategies — and parallel frontier expansion —
//! must produce byte-identical results.
//!
//! Case counts are environment-tunable so CI can run a deeper sweep:
//! `SIMAP_DIFF_CASES=256 cargo test --release --test reach_differential`.

use proptest::prelude::*;
use simap::sg::StateGraph;
use simap::stg::{
    benchmark, benchmark_names, elaborate_with, elaborate_with_stats, parse_g, patterns, Stg,
};
use simap::{ReachConfig, ReachStrategy};

fn cases(default: u32) -> u32 {
    std::env::var("SIMAP_DIFF_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn explicit(config: &ReachConfig) -> ReachConfig {
    ReachConfig { strategy: ReachStrategy::Explicit, jobs: 1, ..config.clone() }
}

/// Structural byte-identity: same signals, state numbering, codes, arcs
/// and initial state (and therefore the same dot rendering).
fn assert_same_graph(packed: &StateGraph, oracle: &StateGraph, context: &str) {
    assert_eq!(packed.name(), oracle.name(), "{context}: name");
    assert_eq!(packed.signals(), oracle.signals(), "{context}: signals");
    assert_eq!(packed.state_count(), oracle.state_count(), "{context}: state count");
    assert_eq!(packed.initial(), oracle.initial(), "{context}: initial state");
    for s in packed.states() {
        assert_eq!(packed.code(s), oracle.code(s), "{context}: code of state {}", s.0);
        assert_eq!(packed.succ(s), oracle.succ(s), "{context}: successors of state {}", s.0);
        assert_eq!(packed.pred(s), oracle.pred(s), "{context}: predecessors of state {}", s.0);
    }
    assert_eq!(
        simap::sg::to_dot(packed, &Default::default()),
        simap::sg::to_dot(oracle, &Default::default()),
        "{context}: dot rendering"
    );
}

/// Elaborates under every strategy (packed sequential, packed jobs=4,
/// explicit) and checks the outcomes — graphs or errors — coincide.
fn assert_differential(stg: &Stg, config: &ReachConfig, context: &str) {
    let packed = elaborate_with(stg, &ReachConfig { jobs: 1, ..config.clone() });
    let parallel = elaborate_with(stg, &ReachConfig { jobs: 4, ..config.clone() });
    let oracle = elaborate_with(stg, &explicit(config));
    match (&packed, &parallel, &oracle) {
        (Ok(p), Ok(par), Ok(o)) => {
            assert_same_graph(p, o, context);
            assert_same_graph(par, o, &format!("{context} [jobs=4]"));
        }
        (Err(p), Err(par), Err(o)) => {
            assert_eq!(p, o, "{context}: packed error must equal the oracle's");
            assert_eq!(par, o, "{context}: parallel error must equal the oracle's");
        }
        _ => panic!(
            "{context}: strategies disagree on success:\n  packed:   {packed:?}\n  \
             parallel: {parallel:?}\n  explicit: {oracle:?}"
        ),
    }
}

/// A recipe for one of the safe parametric specification families.
#[derive(Debug, Clone, Copy)]
struct Part {
    kind: u8,
    a: usize,
    b: usize,
}

fn build_part(part: Part) -> Stg {
    match part.kind % 6 {
        0 => patterns::sequencer(2 + part.a % 5, None),
        1 => patterns::celement(2 + part.a % 4),
        2 => patterns::fork_join(1 + part.a % 3, 1 + part.b % 2),
        3 => patterns::pipeline(1 + part.a % 4),
        4 => patterns::choice(2 + part.a % 3),
        _ => patterns::shared_output_choice(2 + part.a % 2),
    }
}

fn arb_part() -> impl Strategy<Value = Part> {
    proptest::collection::vec(0usize..16, 3).prop_map(|v| Part {
        kind: v[0] as u8,
        a: v[1],
        b: v[2],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Random safe STGs — single patterns and parallel compositions —
    /// elaborate byte-identically under Packed (sequential and jobs=4)
    /// and Explicit.
    #[test]
    fn random_safe_stgs_elaborate_identically(parts in proptest::collection::vec(arb_part(), 1..3)) {
        let stg = if parts.len() == 1 {
            build_part(parts[0])
        } else {
            let built: Vec<Stg> = parts.iter().copied().map(build_part).collect();
            patterns::parallel("t", &built)
        };
        assert_differential(&stg, &ReachConfig::default(), &format!("{parts:?}"));
    }

    /// Tight state limits produce the same `ReachError::StateLimit` —
    /// same limit, same progress counter — under every strategy.
    #[test]
    fn state_limits_map_to_the_same_error(part in arb_part(), limit in 1usize..12) {
        let stg = build_part(part);
        let config = ReachConfig { max_states: limit, ..ReachConfig::default() };
        assert_differential(&stg, &config, &format!("{part:?} limit={limit}"));
    }

    /// Unbounded nets produce the same `ReachError::Unbounded` — same
    /// place, bound and progress counter — under every strategy.
    #[test]
    fn unbounded_nets_map_to_the_same_error(max_tokens in 1u8..5) {
        let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
        let stg = parse_g(src).expect("parses");
        let config = ReachConfig { max_tokens, max_states: 10_000, ..ReachConfig::default() };
        assert_differential(&stg, &config, &format!("unbounded max_tokens={max_tokens}"));
    }
}

/// Every registry benchmark elaborates byte-identically under both
/// strategies and under parallel frontier expansion, with matching
/// exploration counters.
#[test]
fn all_registry_benchmarks_elaborate_identically() {
    for name in benchmark_names() {
        let stg = benchmark(name).expect("known benchmark");
        let config = ReachConfig::default();
        let (packed, pstats) =
            elaborate_with_stats(&stg, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (oracle, ostats) = elaborate_with_stats(&stg, &explicit(&config))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_same_graph(&packed, &oracle, name);
        assert_eq!(
            (pstats.visited, pstats.interned, pstats.edges),
            (ostats.visited, ostats.interned, ostats.edges),
            "{name}: exploration counters"
        );
        let parallel = elaborate_with(&stg, &ReachConfig { jobs: 4, ..config })
            .unwrap_or_else(|e| panic!("{name} [jobs=4]: {e}"));
        assert_same_graph(&parallel, &oracle, &format!("{name} [jobs=4]"));
    }
}

/// Inconsistent STGs are rejected with the same diagnostic by both
/// strategies.
#[test]
fn inconsistent_stgs_map_to_the_same_error() {
    let src = "\
.model bad
.inputs a
.graph
a+ a+/2
a+/2 a-
a- a+
.marking { <a-,a+> }
.end
";
    let stg = parse_g(src).expect("parses");
    let config = ReachConfig::default();
    let packed = elaborate_with(&stg, &config).unwrap_err();
    let oracle = elaborate_with(&stg, &explicit(&config)).unwrap_err();
    assert_eq!(packed, oracle);
}

/// The boundary token bound: at `max_tokens = 255` a token count can hit
/// the top of `u8`; both engines must still agree (the explicit oracle
/// bound-checks before incrementing, the packed engine widens its
/// fields) instead of overflowing.
#[test]
fn max_tokens_255_does_not_overflow() {
    let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
    let stg = parse_g(src).expect("parses");
    // The token-generating net climbs one token per cycle, so a state
    // budget past 2*255 markings lets `q` reach the u8 boundary.
    let config = ReachConfig { max_tokens: 255, max_states: 2000, ..ReachConfig::default() };
    assert_differential(&stg, &config, "max_tokens=255");
}

/// Registry benchmarks under tight limits hit the same `StateLimit`.
#[test]
fn benchmark_state_limits_match() {
    for (name, limit) in [("mmu", 5), ("vbe10b", 100), ("master-read", 17)] {
        let stg = benchmark(name).expect("known benchmark");
        let config = ReachConfig { max_states: limit, ..ReachConfig::default() };
        let packed = elaborate_with(&stg, &config).unwrap_err();
        let parallel =
            elaborate_with(&stg, &ReachConfig { jobs: 4, ..config.clone() }).unwrap_err();
        let oracle = elaborate_with(&stg, &explicit(&config)).unwrap_err();
        assert_eq!(packed, oracle, "{name}");
        assert_eq!(parallel, oracle, "{name} [jobs=4]");
    }
}
