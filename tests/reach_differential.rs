//! Differential testing of the reachability engines: for random safe
//! STGs, every registry benchmark, and every error family (unbounded,
//! state limit, inconsistency), the four strategies — `Packed` (the
//! default, sequential and jobs=4), `Explicit` (the legacy oracle),
//! `Symbolic` (the BDD engine) and `Spill` (the external-memory engine,
//! sequential and jobs∈{2,4}, at the default budget and at a tiny
//! budget that forces genuine spilling) — must agree. The enumerative strategies and Spill are
//! held to byte-identical results; the symbolic engine materializes
//! byte-identical graphs too, and its independently computed counts,
//! initial code, region sizes and CSC conflict codes are cross-checked
//! against the oracle's graph.
//!
//! Case counts are environment-tunable so CI can run a deeper sweep:
//! `SIMAP_DIFF_CASES=256 cargo test --release --test reach_differential`.

use proptest::prelude::*;
use simap::core::csc_conflicts;
use simap::sg::{Event, StateGraph};
use simap::stg::{
    analyze, benchmark, benchmark_names, elaborate_with, elaborate_with_stats, parse_g, patterns,
    reach_symbolic, ReachError, Stg,
};
use simap::{ReachConfig, ReachStrategy};

fn cases(default: u32) -> u32 {
    std::env::var("SIMAP_DIFF_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn explicit(config: &ReachConfig) -> ReachConfig {
    ReachConfig { strategy: ReachStrategy::Explicit, jobs: 1, ..config.clone() }
}

fn symbolic(config: &ReachConfig) -> ReachConfig {
    ReachConfig { strategy: ReachStrategy::Symbolic, jobs: 1, ..config.clone() }
}

/// The spill strategy at a given memory budget. Few shards so tiny
/// budgets overflow the per-shard arena caches too, not just the
/// frontier buffers.
fn spill(config: &ReachConfig, memory_budget: usize) -> ReachConfig {
    ReachConfig {
        strategy: ReachStrategy::Spill,
        jobs: 1,
        memory_budget,
        shards: 4,
        ..config.clone()
    }
}

/// A budget at the engine's floor: every component buffer is at its
/// minimum, so any net with more than a few hundred edges spills.
const TINY_BUDGET: usize = 4096;

/// Structural byte-identity: same signals, state numbering, codes, arcs
/// and initial state (and therefore the same dot rendering).
fn assert_same_graph(packed: &StateGraph, oracle: &StateGraph, context: &str) {
    assert_eq!(packed.name(), oracle.name(), "{context}: name");
    assert_eq!(packed.signals(), oracle.signals(), "{context}: signals");
    assert_eq!(packed.state_count(), oracle.state_count(), "{context}: state count");
    assert_eq!(packed.initial(), oracle.initial(), "{context}: initial state");
    for s in packed.states() {
        assert_eq!(packed.code(s), oracle.code(s), "{context}: code of state {}", s.0);
        assert_eq!(packed.succ(s), oracle.succ(s), "{context}: successors of state {}", s.0);
        assert_eq!(packed.pred(s), oracle.pred(s), "{context}: predecessors of state {}", s.0);
    }
    assert_eq!(
        simap::sg::to_dot(packed, &Default::default()),
        simap::sg::to_dot(oracle, &Default::default()),
        "{context}: dot rendering"
    );
}

/// The sorted set of distinct codes carrying a CSC conflict in a graph —
/// the numbering-independent face of the conflict list.
fn conflict_codes(sg: &StateGraph) -> Vec<u64> {
    let mut codes: Vec<u64> = csc_conflicts(sg).iter().map(|c| c.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

/// Whether two reachability errors belong to the same family. The
/// enumerative engines are held to exact equality elsewhere; the
/// symbolic engine reports the same *kind* of failure with its own
/// wording/counters, and its 1-safety boundary (`NotSafe`) fires before
/// anything else — so on nets that are not 1-safe it stands in for
/// whatever the enumerative engines go on to report (`Unbounded` or
/// `StateLimit` on token-growing nets, `Inconsistent` on bounded
/// multi-token nets whose signals also fail to alternate).
fn same_error_family(symbolic: &ReachError, oracle: &ReachError) -> bool {
    use std::mem::discriminant;
    if discriminant(symbolic) == discriminant(oracle) {
        return true;
    }
    matches!(
        (symbolic, oracle),
        (
            ReachError::NotSafe { .. },
            ReachError::Unbounded { .. }
                | ReachError::StateLimit { .. }
                | ReachError::Inconsistent { .. }
        )
    )
}

/// Cross-checks the symbolic summary — counts, initial code, CSC codes,
/// per-signal regions — against an elaborated oracle graph.
fn assert_summary_matches(stg: &Stg, config: &ReachConfig, oracle: &StateGraph, context: &str) {
    let sym = reach_symbolic(stg, config)
        .unwrap_or_else(|e| panic!("{context}: symbolic summary failed: {e}"));
    assert_eq!(sym.states, oracle.state_count() as u64, "{context}: symbolic state count");
    assert_eq!(sym.initial_code, oracle.code(oracle.initial()), "{context}: symbolic initial code");
    let oracle_codes = conflict_codes(oracle);
    assert_eq!(
        sym.csc_conflict_code_count,
        oracle_codes.len() as u64,
        "{context}: CSC conflict code count"
    );
    if sym.csc_conflict_code_count <= simap::stg::MAX_CONFLICT_CODES as u64 {
        assert_eq!(sym.csc_conflict_codes, oracle_codes, "{context}: CSC conflict codes");
    }
    for r in &sym.regions {
        let rise = Event::rise(r.signal);
        let fall = Event::fall(r.signal);
        let mut rise_excited = 0u64;
        let mut fall_excited = 0u64;
        let mut quiescent_high = 0u64;
        let mut quiescent_low = 0u64;
        for s in oracle.states() {
            let re = oracle.enabled(s, rise);
            let fe = oracle.enabled(s, fall);
            rise_excited += u64::from(re);
            fall_excited += u64::from(fe);
            if !re && !fe {
                if oracle.value(s, r.signal) {
                    quiescent_high += 1;
                } else {
                    quiescent_low += 1;
                }
            }
        }
        assert_eq!(
            (r.rise_excited, r.fall_excited, r.quiescent_high, r.quiescent_low),
            (rise_excited, fall_excited, quiescent_high, quiescent_low),
            "{context}: regions of signal {:?}",
            r.signal
        );
    }
}

/// Elaborates under every strategy (packed sequential, packed jobs=4,
/// explicit, symbolic) and checks the outcomes — graphs or errors —
/// coincide.
fn assert_differential(stg: &Stg, config: &ReachConfig, context: &str) {
    let packed = elaborate_with(stg, &ReachConfig { jobs: 1, ..config.clone() });
    let parallel = elaborate_with(stg, &ReachConfig { jobs: 4, ..config.clone() });
    let oracle = elaborate_with(stg, &explicit(config));
    match (&packed, &parallel, &oracle) {
        (Ok(p), Ok(par), Ok(o)) => {
            assert_same_graph(p, o, context);
            assert_same_graph(par, o, &format!("{context} [jobs=4]"));
        }
        (Err(p), Err(par), Err(o)) => {
            assert_eq!(p, o, "{context}: packed error must equal the oracle's");
            assert_eq!(par, o, "{context}: parallel error must equal the oracle's");
        }
        _ => panic!(
            "{context}: strategies disagree on success:\n  packed:   {packed:?}\n  \
             parallel: {parallel:?}\n  explicit: {oracle:?}"
        ),
    }

    // The spill engine is held to the same exactness as the enumerative
    // pair — byte-identical graphs and identical errors — at the default
    // budget (everything resident) and at the floor budget (arena pages,
    // frontier runs and the edge log all cycling through disk), and at
    // every frontier fan-out: the parallel expansion merges worker
    // results in deterministic (source, transition) order.
    for budget in [ReachConfig::default().memory_budget, TINY_BUDGET] {
        let spilled = elaborate_with(stg, &spill(config, budget));
        match (&spilled, &oracle) {
            (Ok(s), Ok(o)) => {
                assert_same_graph(s, o, &format!("{context} [spill budget={budget}]"));
            }
            (Err(s), Err(o)) => {
                assert_eq!(s, o, "{context} [spill budget={budget}]: error must equal oracle's");
            }
            _ => panic!(
                "{context} [spill budget={budget}]: spill disagrees on success:\n  \
                 spill:    {spilled:?}\n  explicit: {oracle:?}"
            ),
        }
        for jobs in [2, 4] {
            let fanned = elaborate_with(stg, &ReachConfig { jobs, ..spill(config, budget) });
            match (&fanned, &spilled) {
                (Ok(f), Ok(s)) => assert_same_graph(
                    f,
                    s,
                    &format!("{context} [spill budget={budget} jobs={jobs}]"),
                ),
                (Err(f), Err(s)) => assert_eq!(
                    f, s,
                    "{context} [spill budget={budget} jobs={jobs}]: error must match jobs=1"
                ),
                _ => panic!(
                    "{context} [spill budget={budget} jobs={jobs}]: fan-out changes the \
                     outcome:\n  jobs={jobs}: {fanned:?}\n  jobs=1:   {spilled:?}"
                ),
            }
        }
    }

    let sym = elaborate_with(stg, &symbolic(config));
    match (&sym, &oracle) {
        (Ok(s), Ok(o)) => {
            assert_same_graph(s, o, &format!("{context} [symbolic]"));
            assert_summary_matches(stg, config, o, context);
        }
        (Err(ReachError::NotSafe { .. }), Ok(_)) => {
            // The symbolic engine only covers 1-safe nets; the claim must
            // still be true of the net.
            let analysis = analyze(stg, &explicit(config))
                .unwrap_or_else(|e| panic!("{context}: analysis failed: {e}"));
            assert!(!analysis.safe, "{context}: symbolic claimed NotSafe for a 1-safe net");
        }
        (Err(s), Err(o)) => {
            assert!(
                same_error_family(s, o),
                "{context}: symbolic error family mismatch:\n  symbolic: {s:?}\n  \
                 explicit: {o:?}"
            );
        }
        _ => panic!(
            "{context}: symbolic disagrees on success:\n  symbolic: {sym:?}\n  \
             explicit: {oracle:?}"
        ),
    }
}

/// A recipe for one of the safe parametric specification families.
#[derive(Debug, Clone, Copy)]
struct Part {
    kind: u8,
    a: usize,
    b: usize,
}

fn build_part(part: Part) -> Stg {
    match part.kind % 6 {
        0 => patterns::sequencer(2 + part.a % 5, None),
        1 => patterns::celement(2 + part.a % 4),
        2 => patterns::fork_join(1 + part.a % 3, 1 + part.b % 2),
        3 => patterns::pipeline(1 + part.a % 4),
        4 => patterns::choice(2 + part.a % 3),
        _ => patterns::shared_output_choice(2 + part.a % 2),
    }
}

fn arb_part() -> impl Strategy<Value = Part> {
    proptest::collection::vec(0usize..16, 3).prop_map(|v| Part {
        kind: v[0] as u8,
        a: v[1],
        b: v[2],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Random safe STGs — single patterns and parallel compositions —
    /// elaborate identically under Packed (sequential and jobs=4),
    /// Explicit and Symbolic, with the symbolic summary cross-checked.
    #[test]
    fn random_safe_stgs_elaborate_identically(parts in proptest::collection::vec(arb_part(), 1..3)) {
        let stg = if parts.len() == 1 {
            build_part(parts[0])
        } else {
            let built: Vec<Stg> = parts.iter().copied().map(build_part).collect();
            patterns::parallel("t", &built)
        };
        assert_differential(&stg, &ReachConfig::default(), &format!("{parts:?}"));
    }

    /// Tight state limits produce the same `ReachError::StateLimit` —
    /// same limit, same progress counter — under every strategy.
    #[test]
    fn state_limits_map_to_the_same_error(part in arb_part(), limit in 1usize..12) {
        let stg = build_part(part);
        let config = ReachConfig { max_states: limit, ..ReachConfig::default() };
        assert_differential(&stg, &config, &format!("{part:?} limit={limit}"));
    }

    /// Unbounded nets produce the same `ReachError::Unbounded` — same
    /// place, bound and progress counter — under the enumerative
    /// strategies, and the matching `NotSafe` scope error symbolically.
    #[test]
    fn unbounded_nets_map_to_the_same_error(max_tokens in 1u8..5) {
        let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
        let stg = parse_g(src).expect("parses");
        let config = ReachConfig { max_tokens, max_states: 10_000, ..ReachConfig::default() };
        assert_differential(&stg, &config, &format!("unbounded max_tokens={max_tokens}"));
    }
}

/// Every registry benchmark elaborates identically under all three
/// strategies and under parallel frontier expansion, with matching
/// exploration counters; the symbolic summary (exact counts, initial
/// code, regions, CSC codes) is cross-checked against the oracle —
/// on every benchmark in release builds, on the smaller ones in debug
/// builds (the release-mode CI conformance job covers the full suite).
#[test]
fn all_registry_benchmarks_elaborate_identically() {
    for name in benchmark_names() {
        let stg = benchmark(name).expect("known benchmark");
        let config = ReachConfig::default();
        let (packed, pstats) =
            elaborate_with_stats(&stg, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (oracle, ostats) = elaborate_with_stats(&stg, &explicit(&config))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_same_graph(&packed, &oracle, name);
        assert_eq!(
            (pstats.visited, pstats.interned, pstats.edges),
            (ostats.visited, ostats.interned, ostats.edges),
            "{name}: exploration counters"
        );
        let parallel = elaborate_with(&stg, &ReachConfig { jobs: 4, ..config.clone() })
            .unwrap_or_else(|e| panic!("{name} [jobs=4]: {e}"));
        assert_same_graph(&parallel, &oracle, &format!("{name} [jobs=4]"));

        let (spilled, spstats) =
            elaborate_with_stats(&stg, &spill(&config, ReachConfig::default().memory_budget))
                .unwrap_or_else(|e| panic!("{name} [spill]: {e}"));
        assert_same_graph(&spilled, &oracle, &format!("{name} [spill]"));
        assert_eq!(
            (spstats.visited, spstats.interned, spstats.edges),
            (ostats.visited, ostats.interned, ostats.edges),
            "{name}: spill exploration counters"
        );
        assert!(pstats.spill.is_none(), "{name}: packed stats must not carry spill counters");
        let counters = spstats.spill.unwrap_or_else(|| panic!("{name}: spill counters missing"));
        assert_eq!(counters.shards, 4, "{name}: effective shard count");
        for jobs in [2, 4] {
            let fanned = elaborate_with(
                &stg,
                &ReachConfig { jobs, ..spill(&config, ReachConfig::default().memory_budget) },
            )
            .unwrap_or_else(|e| panic!("{name} [spill jobs={jobs}]: {e}"));
            assert_same_graph(&fanned, &oracle, &format!("{name} [spill jobs={jobs}]"));
        }
        if !cfg!(debug_assertions) || oracle.state_count() <= 500 {
            let tiny = elaborate_with_stats(&stg, &spill(&config, TINY_BUDGET))
                .unwrap_or_else(|e| panic!("{name} [spill tiny]: {e}"));
            assert_same_graph(&tiny.0, &oracle, &format!("{name} [spill tiny]"));
            let tc = tiny.1.spill.expect("spill counters");
            if oracle.state_count() > 200 {
                assert!(
                    tc.spilled_bytes > 0 && tc.files_created > 0,
                    "{name}: a {TINY_BUDGET}-byte budget must force real spilling \
                     (got {tc:?})"
                );
            }
            let tiny4 =
                elaborate_with(&stg, &ReachConfig { jobs: 4, ..spill(&config, TINY_BUDGET) })
                    .unwrap_or_else(|e| panic!("{name} [spill tiny jobs=4]: {e}"));
            assert_same_graph(&tiny4, &oracle, &format!("{name} [spill tiny jobs=4]"));
        }

        let (sym, sstats) = elaborate_with_stats(&stg, &symbolic(&config))
            .unwrap_or_else(|e| panic!("{name} [symbolic]: {e}"));
        assert_same_graph(&sym, &oracle, &format!("{name} [symbolic]"));
        assert_eq!(sstats.strategy, ReachStrategy::Symbolic, "{name}: symbolic stats strategy");
        assert_eq!(
            (sstats.visited, sstats.interned, sstats.edges),
            (ostats.visited, ostats.interned, ostats.edges),
            "{name}: symbolic exploration counters"
        );
        if !cfg!(debug_assertions) || oracle.state_count() <= 500 {
            assert_summary_matches(&stg, &config, &oracle, name);
        }
    }
}

/// Inconsistent STGs are rejected with the same diagnostic by the
/// enumerative strategies and with the same error family symbolically.
#[test]
fn inconsistent_stgs_map_to_the_same_error() {
    let src = "\
.model bad
.inputs a
.graph
a+ a+/2
a+/2 a-
a- a+
.marking { <a-,a+> }
.end
";
    let stg = parse_g(src).expect("parses");
    let config = ReachConfig::default();
    let packed = elaborate_with(&stg, &config).unwrap_err();
    let oracle = elaborate_with(&stg, &explicit(&config)).unwrap_err();
    assert_eq!(packed, oracle);
    let sym = elaborate_with(&stg, &symbolic(&config)).unwrap_err();
    assert_eq!(sym, oracle, "symbolic materialization shares the consistency check");
    let summary = reach_symbolic(&stg, &config).unwrap_err();
    assert!(matches!(summary, ReachError::Inconsistent { .. }), "{summary}");
}

/// A bounded multi-token net whose signal also fails to alternate: the
/// enumerative engines finish exploring and report `Inconsistent`, while
/// the symbolic engine's 1-safety pre-check fires first (`NotSafe`) —
/// the one place the families legitimately differ in kind.
#[test]
fn multi_token_inconsistent_nets_stay_family_compatible() {
    let src = "\
.model mti
.inputs a b
.graph
a+ a+/2
a+/2 a-
a- a+
p b+
b+ b-
b- p
.marking { <a-,a+> p=2 }
.end
";
    let stg = parse_g(src).expect("parses");
    assert_differential(&stg, &ReachConfig::default(), "multi-token inconsistent");
    let oracle = elaborate_with(&stg, &explicit(&ReachConfig::default())).unwrap_err();
    assert!(matches!(oracle, ReachError::Inconsistent { .. }), "{oracle}");
    let sym = elaborate_with(&stg, &symbolic(&ReachConfig::default())).unwrap_err();
    assert!(matches!(sym, ReachError::NotSafe { .. }), "{sym}");
}

/// The boundary token bound: at `max_tokens = 255` a token count can hit
/// the top of `u8`; both enumerative engines must still agree (the
/// explicit oracle bound-checks before incrementing, the packed engine
/// widens its fields) instead of overflowing.
#[test]
fn max_tokens_255_does_not_overflow() {
    let src = "\
.model unb
.inputs a
.graph
p a+
a+ p q
q a-
a- p
.marking { p }
.end
";
    let stg = parse_g(src).expect("parses");
    // The token-generating net climbs one token per cycle, so a state
    // budget past 2*255 markings lets `q` reach the u8 boundary.
    let config = ReachConfig { max_tokens: 255, max_states: 2000, ..ReachConfig::default() };
    assert_differential(&stg, &config, "max_tokens=255");
}

/// Registry benchmarks under tight limits hit the same `StateLimit` —
/// byte-identical across all three strategies (the symbolic engine
/// counts first, then reproduces the enumerative limit error exactly).
#[test]
fn benchmark_state_limits_match() {
    for (name, limit) in [("mmu", 5), ("vbe10b", 100), ("master-read", 17)] {
        let stg = benchmark(name).expect("known benchmark");
        let config = ReachConfig { max_states: limit, ..ReachConfig::default() };
        let packed = elaborate_with(&stg, &config).unwrap_err();
        let parallel =
            elaborate_with(&stg, &ReachConfig { jobs: 4, ..config.clone() }).unwrap_err();
        let oracle = elaborate_with(&stg, &explicit(&config)).unwrap_err();
        assert_eq!(packed, oracle, "{name}");
        assert_eq!(parallel, oracle, "{name} [jobs=4]");
        let sym = elaborate_with(&stg, &symbolic(&config)).unwrap_err();
        assert_eq!(sym, oracle, "{name} [symbolic]");
        for budget in [ReachConfig::default().memory_budget, TINY_BUDGET] {
            let spilled = elaborate_with(&stg, &spill(&config, budget)).unwrap_err();
            assert_eq!(spilled, oracle, "{name} [spill budget={budget}]");
        }
    }
}
