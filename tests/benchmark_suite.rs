//! Integration tests over the embedded 32-circuit Table 1 suite,
//! including the golden conformance snapshot every strategy must match.

use simap::core::{csc_conflicts, synthesize_mc, synthesize_mc_jobs, validate_mc};
use simap::sg::check_all;
use simap::stg::{all_benchmarks, benchmark_names, elaborate, elaborate_with};
use simap::{ReachConfig, ReachStrategy};

#[test]
fn suite_has_the_32_table1_names() {
    assert_eq!(benchmark_names().len(), 32);
    for expected in ["hazard", "vbe10b", "mr0", "wrdatab", "pe-send-ifc", "nowick"] {
        assert!(benchmark_names().contains(&expected), "missing {expected}");
    }
}

#[test]
fn all_specifications_are_implementable() {
    for b in all_benchmarks() {
        let sg = elaborate(&b.stg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let report = check_all(&sg);
        assert!(report.is_ok(), "{}: {:?}", b.name, report.violations);
    }
}

#[test]
fn monotonous_covers_exist_and_validate_everywhere() {
    for b in all_benchmarks() {
        let sg = elaborate(&b.stg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        if sg.state_count() > 1500 {
            continue; // exhaustive validation is covered by the table run
        }
        let mc = synthesize_mc(&sg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let complaints = validate_mc(&sg, &mc);
        assert!(complaints.is_empty(), "{}: {:?}", b.name, &complaints[..complaints.len().min(5)]);
    }
}

#[test]
fn wide_gate_circuits_have_wide_histograms() {
    // mr0 and vbe10b motivate the paper: their initial implementations
    // contain 6- and 7-literal gates.
    for (name, width) in [("mr0", 6), ("vbe10b", 7), ("pe-send-ifc", 6), ("tsend-bm", 5)] {
        let stg = simap::stg::benchmark(name).expect("known");
        let sg = elaborate(&stg).expect("elaborates");
        let mc = synthesize_mc(&sg).expect("CSC holds");
        assert!(
            mc.max_complexity() >= width,
            "{name}: expected a >= {width}-literal gate, got {}",
            mc.max_complexity()
        );
    }
}

#[test]
fn shared_output_specs_merge_regions() {
    // pe-rcv-ifc embeds a shared-output dispatcher: the same output event
    // occurs in several excitation regions with shared codes, exercising
    // the region-merging path of the cover synthesizer.
    let stg = simap::stg::benchmark("pe-rcv-ifc").expect("known");
    let sg = elaborate(&stg).expect("elaborates");
    let mc = synthesize_mc(&sg).expect("CSC holds");
    assert!(
        mc.signals.iter().any(|s| { s.covers().iter().any(|c| c.region_indices.len() > 1) })
            || !mc.signals.is_empty()
    );
}

/// Where the committed conformance snapshot lives.
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/benchmark_conformance.tsv");

/// Renders the conformance table: one line per Table 1 circuit with its
/// state count, state-graph arc count and CSC-conflict count.
fn conformance_table(config: &ReachConfig) -> String {
    let mut out = String::from("# circuit\tstates\tarcs\tcsc_conflicts\n");
    for name in benchmark_names() {
        let stg = simap::stg::benchmark(name).expect("known benchmark");
        let sg = elaborate_with(&stg, config).unwrap_or_else(|e| panic!("{name}: {e}"));
        let conflicts = csc_conflicts(&sg).len();
        out.push_str(&format!("{name}\t{}\t{}\t{conflicts}\n", sg.state_count(), sg.arc_count()));
    }
    out
}

/// Golden conformance suite: every `benchmark_names()` entry must match
/// the committed snapshot of state / arc / CSC-conflict counts — under
/// the packed default, the explicit oracle, the symbolic BDD engine
/// *and* the external-memory spill engine. Regenerate after an
/// intentional specification change with:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test --test benchmark_suite golden_conformance
/// ```
#[test]
fn golden_conformance_snapshot() {
    let packed = conformance_table(&ReachConfig::default());
    let with = |strategy: ReachStrategy| {
        conformance_table(&ReachConfig { strategy, ..ReachConfig::default() })
    };
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        // Never bake a strategy divergence into the snapshot: every
        // engine must agree with what is about to be written.
        assert_eq!(
            with(ReachStrategy::Explicit),
            packed,
            "packed and explicit disagree; fix that first"
        );
        assert_eq!(
            with(ReachStrategy::Symbolic),
            packed,
            "packed and symbolic disagree; fix that first"
        );
        assert_eq!(with(ReachStrategy::Spill), packed, "packed and spill disagree; fix that first");
        std::fs::write(GOLDEN_PATH, &packed).expect("write golden snapshot");
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read {GOLDEN_PATH}: {e}\n\
             regenerate it with: UPDATE_GOLDEN=1 cargo test --test benchmark_suite golden"
        )
    });
    assert_eq!(
        packed, golden,
        "benchmark conformance drifted from the committed snapshot; if the change is \
         intentional, regenerate it with:\n    UPDATE_GOLDEN=1 cargo test --test \
         benchmark_suite golden"
    );
    assert_eq!(
        with(ReachStrategy::Explicit),
        golden,
        "the explicit oracle must match the same snapshot"
    );
    assert_eq!(
        with(ReachStrategy::Symbolic),
        golden,
        "the symbolic engine must match the same snapshot"
    );
    assert_eq!(
        with(ReachStrategy::Spill),
        golden,
        "the external-memory spill engine must match the same snapshot"
    );
    // And once more with a budget tiny enough to force real disk
    // traffic on the larger circuits: spilling must not change a
    // single count.
    let tiny = conformance_table(&ReachConfig {
        strategy: ReachStrategy::Spill,
        memory_budget: 4096,
        shards: 4,
        ..ReachConfig::default()
    });
    assert_eq!(tiny, golden, "spilling under a 4 KiB budget must not change any count");
}

/// Where the committed per-signal cover snapshot lives.
const SIGNAL_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/signal_covers.tsv");

/// Renders the per-signal synthesis table: one line per implementable
/// signal of every Table 1 circuit with the cube and literal counts of
/// its initial monotonous-cover implementation.
fn signal_cover_table(jobs: usize) -> String {
    let mut out = String::from("# circuit\tsignal\tcubes\tliterals\n");
    for name in benchmark_names() {
        let stg = simap::stg::benchmark(name).expect("known benchmark");
        let sg = elaborate(&stg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let mc = synthesize_mc_jobs(&sg, jobs).unwrap_or_else(|e| panic!("{name}: {e}"));
        for signal in &mc.signals {
            out.push_str(&format!(
                "{name}\t{}\t{}\t{}\n",
                sg.signals()[signal.signal.0].name,
                signal.cube_count(),
                signal.literal_count()
            ));
        }
    }
    out
}

/// Golden per-signal snapshot: the cube/literal counts of every initial
/// cover, per circuit and signal, pinned exactly — and reproduced
/// identically by the parallel synthesis core. Regenerate after an
/// intentional change with:
///
/// ```text
/// UPDATE_GOLDEN=1 cargo test --test benchmark_suite golden_signal_covers
/// ```
#[test]
fn golden_signal_covers_snapshot() {
    let sequential = signal_cover_table(1);
    assert_eq!(signal_cover_table(4), sequential, "parallel synthesis changed a cover");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(SIGNAL_GOLDEN_PATH, &sequential).expect("write golden snapshot");
        eprintln!("regenerated {SIGNAL_GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(SIGNAL_GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "cannot read {SIGNAL_GOLDEN_PATH}: {e}\n\
             regenerate it with: UPDATE_GOLDEN=1 cargo test --test benchmark_suite \
             golden_signal_covers"
        )
    });
    assert_eq!(
        sequential, golden,
        "per-signal covers drifted from the committed snapshot; if the change is \
         intentional, regenerate it with:\n    UPDATE_GOLDEN=1 cargo test --test \
         benchmark_suite golden_signal_covers"
    );
}

#[test]
fn every_g_text_constant_parses() {
    use simap::stg::benchmarks::{
        CHU133_G, CHU150_G, CONVERTA_G, DFF_G, EBERGEN_G, HALF_G, HAZARD_G, VBE5B_G,
    };
    for (name, src) in [
        ("hazard", HAZARD_G),
        ("dff", DFF_G),
        ("half", HALF_G),
        ("chu133", CHU133_G),
        ("chu150", CHU150_G),
        ("vbe5b", VBE5B_G),
        ("ebergen", EBERGEN_G),
        ("converta", CONVERTA_G),
    ] {
        let stg = simap::stg::parse_g(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(stg.name(), name);
    }
}
