//! Cross-crate integration tests: STG text → reachability → monotonous
//! covers → decomposition → netlist → speed-independence verification.

use simap::core::{build_circuit, decompose, DecomposeConfig};
use simap::netlist::{verify_speed_independence, VerifyConfig};
use simap::sg::check_all;
use simap::Synthesis;

fn sg_of(name: &str) -> simap::sg::StateGraph {
    let stg = simap::stg::benchmark(name).expect("known benchmark");
    simap::stg::elaborate(&stg).expect("elaborates")
}

#[test]
fn hazard_full_flow_is_verified() {
    let report = Synthesis::from_benchmark("hazard").run().expect("CSC holds");
    assert_eq!(report.inserted, Some(1), "the 3-literal cube needs one insertion");
    assert_eq!(report.verified, Some(true));
    assert!(report.outcome.mc.max_complexity() <= 2);
}

#[test]
fn small_benchmarks_map_to_two_input_gates() {
    for name in ["half", "dff", "chu133", "chu150", "converta", "ebergen", "vbe5b", "rcv-setup"] {
        let report =
            Synthesis::from_benchmark(name).run().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.inserted.is_some(), "{name} must be 2-input implementable");
        assert_eq!(report.verified, Some(true), "{name} final circuit must verify");
    }
}

#[test]
fn decomposition_preserves_all_sg_properties() {
    for name in ["hazard", "mp-forward-pkt", "seq4", "vbe5c"] {
        let sg = sg_of(name);
        let result = decompose(&sg, &DecomposeConfig::with_limit(2))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = check_all(&result.sg);
        assert!(report.is_ok(), "{name}: {:?}", report.violations);
    }
}

#[test]
fn inserted_signals_are_internal_and_fresh() {
    let sg = sg_of("mr1");
    let result = decompose(&sg, &DecomposeConfig::with_limit(2)).expect("CSC holds");
    assert!(result.implementable);
    let original = sg.signal_count();
    assert_eq!(result.sg.signal_count(), original + result.inserted.len());
    for name in &result.inserted {
        let id = result.sg.signal_by_name(name).expect("inserted signal exists");
        assert_eq!(
            result.sg.signals()[id.0].kind,
            simap::sg::SignalKind::Internal,
            "{name} must be internal"
        );
    }
}

#[test]
fn final_netlist_gate_sizes_respect_limit() {
    for (name, limit) in [("hazard", 2), ("chu150", 2), ("trimos-send", 3)] {
        let sg = sg_of(name);
        let result = decompose(&sg, &DecomposeConfig::with_limit(limit))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(result.implementable, "{name}@{limit}");
        assert!(
            result.mc.max_complexity() <= limit,
            "{name}: max gate {} exceeds {limit}",
            result.mc.max_complexity()
        );
    }
}

#[test]
fn verification_catches_a_broken_substitution() {
    // Build the correct MC netlist for dff, then clobber one cover: the
    // verifier must refute speed-independence or conformance.
    let sg = sg_of("dff");
    let mc = simap::core::synthesize_mc(&sg).expect("CSC holds");
    let good = build_circuit(&sg, &mc);
    assert!(verify_speed_independence(&good, &sg, &VerifyConfig::default()).is_ok());

    let mut broken = simap::core::McImpl { signals: mc.signals.clone() };
    if let simap::core::SignalBody::StandardC { set, .. } = &mut broken.signals[0].body {
        // Replace the set cover with constant 1: fires q+ immediately.
        set[0].cover = simap::boolean::Cover::one();
    }
    let bad = build_circuit(&sg, &broken);
    assert!(
        verify_speed_independence(&bad, &sg, &VerifyConfig::default()).is_err(),
        "clobbered cover must be refuted"
    );
}

#[test]
fn g_format_roundtrip_preserves_flow_results() {
    let stg = simap::stg::benchmark("ebergen").expect("known");
    let text = simap::stg::write_g(&stg);
    let r1 = Synthesis::from_stg(stg).run().expect("flow");
    let r2 = Synthesis::from_g_source(text).run().expect("flow");
    assert_eq!(r1.inserted, r2.inserted);
    assert_eq!(r1.si_cost, r2.si_cost);
}

#[test]
fn higher_limits_never_need_more_insertions() {
    for name in ["hazard", "chu150", "mr1"] {
        let sg = sg_of(name);
        let counts: Vec<Option<usize>> = [2usize, 3, 4]
            .iter()
            .map(|&limit| {
                decompose(&sg, &DecomposeConfig::with_limit(limit))
                    .expect("CSC holds")
                    .implementable
                    .then(|| {
                        decompose(&sg, &DecomposeConfig::with_limit(limit))
                            .expect("CSC holds")
                            .inserted
                            .len()
                    })
            })
            .collect();
        if let (Some(a), Some(b)) = (counts[0], counts[1]) {
            assert!(b <= a, "{name}: i=3 used more insertions than i=2");
        }
        if let (Some(b), Some(c)) = (counts[1], counts[2]) {
            assert!(c <= b, "{name}: i=4 used more insertions than i=3");
        }
    }
}
