//! Determinism wall for the per-signal parallel synthesis core: at any
//! `Config::synth_jobs`, the flow must produce byte-identical JSON
//! reports and an identical observer event stream — across the embedded
//! Table 1 suite, random pattern-composed nets, and the engine's
//! cold-versus-cached elaboration replay.
//!
//! Case counts are environment-tunable so CI can run a deeper sweep:
//! `SIMAP_SYNTH_CASES=64 cargo test --release --test synth_parallel`.

use proptest::prelude::*;
use simap::core::report_json;
use simap::stg::{benchmark_names, patterns, Stg};
use simap::{Config, Engine, EventObserver, FlowEvent, Synthesis};
use std::sync::{Arc, Mutex};

/// The fan-outs every spec is checked at, against the sequential run.
const PARALLEL_JOBS: [usize; 3] = [2, 4, 8];

fn cases(default: u32) -> u32 {
    std::env::var("SIMAP_SYNTH_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Runs one flow at the given fan-out, returning the JSON report (or the
/// error rendering) plus the full observer event stream as JSON lines.
fn run_with_jobs(
    make: &dyn Fn() -> Synthesis,
    config: &Config,
    jobs: usize,
) -> (Result<String, String>, Vec<String>) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = events.clone();
    let config = config.to_builder().synth_jobs(jobs).build().expect("valid config");
    let result = make()
        .config(&config)
        .observer(EventObserver::new(move |e: FlowEvent| sink.lock().unwrap().push(e.to_json())))
        .run()
        .map(|report| report_json(&report))
        .map_err(|e| format!("{e:?}"));
    let events = events.lock().expect("sink poisoned").clone();
    (result, events)
}

/// The invariant: reports and event streams at `synth_jobs ∈ {2,4,8}`
/// are byte-identical to the sequential run (errors included).
fn assert_jobs_invariant(make: &dyn Fn() -> Synthesis, config: &Config, context: &str) {
    let (sequential_report, sequential_events) = run_with_jobs(make, config, 1);
    for jobs in PARALLEL_JOBS {
        let (report, events) = run_with_jobs(make, config, jobs);
        assert_eq!(report, sequential_report, "{context} [synth_jobs={jobs}]: report");
        assert_eq!(events, sequential_events, "{context} [synth_jobs={jobs}]: event stream");
    }
}

/// Every embedded benchmark produces byte-identical reports and event
/// streams at every fan-out. Debug builds skip the largest circuits
/// (the release-mode CI conformance job covers the full suite).
#[test]
fn benchmark_suite_is_jobs_invariant() {
    let config = Config::builder().verify(false).build().expect("valid config");
    for &name in benchmark_names() {
        if cfg!(debug_assertions) {
            let elaborated =
                Synthesis::from_benchmark(name).elaborate().expect("benchmark elaborates");
            if elaborated.state_graph().state_count() > 400 {
                continue;
            }
        }
        let make = || Synthesis::from_benchmark(name);
        assert_jobs_invariant(&make, &config, name);
    }
}

/// The canonical per-signal event order: within the Covers stage, one
/// `signal_synth` line per implementable signal, in signal-index order,
/// regardless of which worker finished first.
#[test]
fn signal_synth_events_replay_in_signal_index_order() {
    let elaborated = Synthesis::from_benchmark("hazard").elaborate().expect("elaborates");
    let expected: Vec<String> = {
        let sg = elaborated.state_graph();
        sg.implementable_signals().iter().map(|s| sg.signals()[s.0].name.clone()).collect()
    };
    let config = Config::builder().verify(false).build().expect("valid config");
    for jobs in [1, 2, 4, 8] {
        let (_, events) = run_with_jobs(&|| Synthesis::from_benchmark("hazard"), &config, jobs);
        let covers_start = events
            .iter()
            .position(|e| e.contains("\"stage_start\",\"stage\":\"covers\""))
            .expect("covers stage starts");
        let synths: Vec<&String> =
            events.iter().filter(|e| e.starts_with("{\"event\":\"signal_synth\"")).collect();
        assert_eq!(synths.len(), expected.len(), "[jobs={jobs}] one event per signal");
        for (event, name) in synths.iter().zip(&expected) {
            assert!(
                event.contains(&format!("\"signal\":\"{name}\"")),
                "[jobs={jobs}] expected {name} in {event}"
            );
        }
        // All of them belong to the Covers stage, after its start event.
        let first_synth = events
            .iter()
            .position(|e| e.starts_with("{\"event\":\"signal_synth\""))
            .expect("events fired");
        assert!(first_synth > covers_start, "[jobs={jobs}] synth events follow covers start");
    }
}

/// A `.g` specification with a textbook CSC conflict (the code `10` is
/// visited twice with different futures), used to exercise the
/// conflict/repair replay path of the engine cache.
const CSC_CONFLICTED_G: &str = "\
.model cscdemo
.outputs a b
.graph
a+ b+
b+ b-
b- a-
a- a+
.marking { <a-,a+> }
.end
";

/// Cold and cached elaborations must emit identical event streams —
/// stage events, CSC conflicts, CSC repairs and per-signal progress all
/// replay in the same canonical order — and varying `synth_jobs` between
/// the runs must still hit the cache (the knob is excluded from the
/// elaboration key because it never changes output).
#[test]
fn cold_and_cached_event_streams_match() {
    let base = Config::builder().repair_csc(true).verify(false).build().expect("valid config");
    let engine = Engine::new(base.clone());
    let make = || engine.g_source(CSC_CONFLICTED_G);
    let (cold_report, cold_events) = run_with_jobs(&make, &base, 1);
    assert_eq!(engine.cache_stats().hits, 0, "first run is cold");
    let (cached_report, cached_events) = run_with_jobs(&make, &base, 4);
    assert!(engine.cache_stats().hits >= 1, "second run replays from the cache");
    assert_eq!(cached_report, cold_report, "cached report");
    assert_eq!(cached_events, cold_events, "cached event stream");
    // The stream really exercised the conflict/repair replay.
    assert!(
        cold_events.iter().any(|e| e.starts_with("{\"event\":\"csc_conflicts\"")),
        "{cold_events:?}"
    );
    assert!(
        cold_events.iter().any(|e| e.starts_with("{\"event\":\"csc_repair\"")),
        "{cold_events:?}"
    );
    assert!(
        cold_events.iter().any(|e| e.starts_with("{\"event\":\"signal_synth\"")),
        "{cold_events:?}"
    );
}

/// A recipe for one of the safe parametric specification families
/// (mirroring the reachability differential suite).
#[derive(Debug, Clone, Copy)]
struct Part {
    kind: u8,
    a: usize,
    b: usize,
}

fn build_part(part: Part) -> Stg {
    match part.kind % 6 {
        0 => patterns::sequencer(2 + part.a % 5, None),
        1 => patterns::celement(2 + part.a % 4),
        2 => patterns::fork_join(1 + part.a % 3, 1 + part.b % 2),
        3 => patterns::pipeline(1 + part.a % 4),
        4 => patterns::choice(2 + part.a % 3),
        _ => patterns::shared_output_choice(2 + part.a % 2),
    }
}

fn arb_part() -> impl Strategy<Value = Part> {
    proptest::collection::vec(0usize..16, 3).prop_map(|v| Part {
        kind: v[0] as u8,
        a: v[1],
        b: v[2],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(6)))]

    /// Random pattern-composed nets — with CSC repair on, so conflicted
    /// compositions flow through state-signal insertion — are
    /// jobs-invariant end to end, errors included.
    #[test]
    fn random_pattern_nets_are_jobs_invariant(parts in proptest::collection::vec(arb_part(), 1..3)) {
        let stg = if parts.len() == 1 {
            build_part(parts[0])
        } else {
            let built: Vec<Stg> = parts.iter().copied().map(build_part).collect();
            patterns::parallel("t", &built)
        };
        let config = Config::builder()
            .repair_csc(true)
            .verify(false)
            .build()
            .expect("valid config");
        let make = || Synthesis::from_stg(stg.clone());
        assert_jobs_invariant(&make, &config, &format!("{parts:?}"));
    }
}
