//! End-to-end checks of the report emitters and the artifacts a CLI user
//! relies on: Verilog export of a mapped benchmark, dot export, and the
//! markdown/CSV batch emitters over real flow results.

use simap::core::{to_csv, to_markdown, FlowReport};
use simap::netlist::to_verilog;
use simap::sg::DotOptions;
use simap::{Batch, Synthesis, Verified};

fn verified(name: &str, limit: usize) -> Verified {
    Synthesis::from_benchmark(name)
        .literal_limit(limit)
        .elaborate()
        .expect("elaborates")
        .covers()
        .expect("CSC holds")
        .decompose()
        .expect("decomposes")
        .map()
        .verify()
        .expect("verifies")
}

fn flow(name: &str, limit: usize) -> FlowReport {
    verified(name, limit).into_report()
}

#[test]
fn verilog_of_mapped_benchmark_is_structurally_sound() {
    let verified = verified("hazard", 2);
    let v = to_verilog(verified.circuit(), &verified.report().outcome.sg, "hazard");
    // Ports: inputs a, b; outputs x, y. Inserted x0 must be a wire.
    assert!(v.contains("input a"));
    assert!(v.contains("input b"));
    assert!(v.contains("output x"));
    assert!(v.contains("output y"));
    assert!(v.contains("wire x0"), "{v}");
    assert!(!v.contains("output x0"));
    // One C element for y.
    assert_eq!(v.matches("celement u_c").count(), 1);
    // Balanced module/endmodule ("endmodule" contains "module").
    assert_eq!(v.matches("endmodule").count(), 2);
}

#[test]
fn dot_of_final_graph_contains_inserted_signal() {
    let report = flow("hazard", 2);
    let dot = simap::sg::to_dot(
        &report.outcome.sg,
        &DotOptions { show_codes: true, ..Default::default() },
    );
    assert!(dot.contains("x0+"), "inserted signal's events must label arcs");
}

#[test]
fn emitters_cover_batch_rows() {
    let rows = Batch::over_benchmarks(["half"]).limits([2]).run().expect("batch");
    let md = to_markdown(&[2], &rows);
    assert!(md.contains("| half |"));
    let csv = to_csv(&[2], &rows);
    assert!(csv.lines().count() >= 2);
}
