//! End-to-end checks of the report emitters and the artifacts a CLI user
//! relies on: Verilog export of a mapped benchmark, dot export, the
//! markdown/CSV/JSON batch emitters over real flow results, and the
//! `simap` binary itself — strict flag handling, `--json` output and the
//! parallel `bench run` driver.

use simap::core::{report_json, to_csv, to_json, to_markdown, FlowReport};
use simap::netlist::to_verilog;
use simap::sg::DotOptions;
use simap::{Batch, Config, Synthesis, Verified};
use std::process::Command;

fn verified(name: &str, limit: usize) -> Verified {
    let config = Config::builder().literal_limit(limit).build().expect("valid limit");
    Synthesis::from_benchmark(name)
        .config(&config)
        .elaborate()
        .expect("elaborates")
        .covers()
        .expect("CSC holds")
        .decompose()
        .expect("decomposes")
        .map()
        .verify()
        .expect("verifies")
}

fn flow(name: &str, limit: usize) -> FlowReport {
    verified(name, limit).into_report()
}

#[test]
fn verilog_of_mapped_benchmark_is_structurally_sound() {
    let verified = verified("hazard", 2);
    let v = to_verilog(verified.circuit(), &verified.report().outcome.sg, "hazard");
    // Ports: inputs a, b; outputs x, y. Inserted x0 must be a wire.
    assert!(v.contains("input a"));
    assert!(v.contains("input b"));
    assert!(v.contains("output x"));
    assert!(v.contains("output y"));
    assert!(v.contains("wire x0"), "{v}");
    assert!(!v.contains("output x0"));
    // One C element for y.
    assert_eq!(v.matches("celement u_c").count(), 1);
    // Balanced module/endmodule ("endmodule" contains "module").
    assert_eq!(v.matches("endmodule").count(), 2);
}

#[test]
fn dot_of_final_graph_contains_inserted_signal() {
    let report = flow("hazard", 2);
    let dot = simap::sg::to_dot(
        &report.outcome.sg,
        &DotOptions { show_codes: true, ..Default::default() },
    );
    assert!(dot.contains("x0+"), "inserted signal's events must label arcs");
}

#[test]
fn emitters_cover_batch_rows() {
    let rows = Batch::over_benchmarks(["half"]).limits([2]).run().expect("batch");
    let md = to_markdown(&[2], &rows);
    assert!(md.contains("| half |"));
    let csv = to_csv(&[2], &rows);
    assert!(csv.lines().count() >= 2);
}

/// Golden test of the hand-rolled JSON emitters: the exact bytes for the
/// `half` benchmark (deterministic flow, deterministic key order).
#[test]
fn json_emitters_match_golden_output() {
    let report = flow("half", 2);
    assert_eq!(
        report_json(&report),
        "{\"name\":\"half\",\"initial_histogram\":[0,2,1],\"implementable\":true,\
         \"inserted\":0,\"inserted_names\":[],\
         \"si_cost\":{\"literals\":4,\"c_elements\":1},\
         \"non_si_cost\":{\"literals\":4,\"c_elements\":1},\"verified\":true,\
         \"reach\":{\"visited\":6,\"interned\":6,\"edges\":6,\"strategy\":\"packed\"}}"
    );

    let rows = Batch::over_benchmarks(["half"]).limits([2]).run().expect("batch");
    assert_eq!(
        to_json(&[2], &rows),
        "{\"limits\":[2],\"circuits\":[{\"name\":\"half\",\"states\":6,\"runs\":[\
         {\"literal_limit\":2,\"report\":{\"name\":\"half\",\
         \"initial_histogram\":[0,2,1],\"implementable\":true,\"inserted\":0,\
         \"inserted_names\":[],\"si_cost\":{\"literals\":4,\"c_elements\":1},\
         \"non_si_cost\":{\"literals\":4,\"c_elements\":1},\"verified\":true,\
         \"reach\":{\"visited\":6,\"interned\":6,\"edges\":6,\"strategy\":\"packed\"}}}]}]}"
    );
}

// ---- the `simap` binary itself ----

fn simap(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simap")).args(args).output().expect("binary runs")
}

#[test]
fn cli_rejects_unknown_flags() {
    let out = simap(&["map", "--bench", "half", "--badflag"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--badflag`"), "{stderr}");
}

#[test]
fn cli_rejects_flags_missing_their_value() {
    for args in [
        vec!["map", "--bench", "half", "--or-limit"],
        vec!["map", "--bench"],
        vec!["bench", "run", "half", "--jobs"],
    ] {
        let out = simap(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("requires a value"), "{args:?}: {stderr}");
    }
}

#[test]
fn cli_rejects_unknown_flags_in_subcommands() {
    let out = simap(&["bench", "run", "half", "--nonsense"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag `--nonsense`"), "{stderr}");
}

#[test]
fn cli_rejects_invalid_config_values() {
    let out = simap(&["map", "--bench", "half", "--limit", "1"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid configuration"), "{stderr}");
}

#[test]
fn cli_map_json_matches_library_emitter() {
    let out = simap(&["map", "--bench", "half", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.trim_end(), report_json(&flow("half", 2)));
}

#[test]
fn cli_json_stdout_stays_pure_with_exports() {
    let dir = std::env::temp_dir().join("simap_cli_json_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let verilog = dir.join("half.v");
    let out = simap(&["map", "--bench", "half", "--json", "--verilog", verilog.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.trim_end(),
        report_json(&flow("half", 2)),
        "stdout must be exactly one JSON document"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote"), "confirmation on stderr");
    assert!(verilog.exists());
}

#[test]
fn cli_bench_list_json_matches_shared_registry_listing() {
    let out = simap(&["bench", "list", "--json"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected = simap::core::benchmarks_json(&simap::Engine::default()).expect("listing");
    assert_eq!(stdout.trim_end(), expected, "CLI and library listing must be byte-identical");
    // And it is machine-readable with the crate's own parser.
    let parsed = simap::core::json::parse(stdout.trim_end()).expect("valid JSON");
    let entries = parsed.get("benchmarks").and_then(simap::core::json::Json::as_array).unwrap();
    assert_eq!(entries.len(), simap::Engine::default().registry().names().len());
}

#[test]
fn cli_bench_run_parallel_output_is_identical_to_sequential() {
    let base = ["bench", "run", "half", "hazard", "dff", "--limits", "2,3", "--no-verify"];
    let sequential = simap(&[&base[..], &["--csv", "--jobs", "1"]].concat());
    let parallel = simap(&[&base[..], &["--csv", "--jobs", "3"]].concat());
    assert!(sequential.status.success() && parallel.status.success());
    assert!(!sequential.stdout.is_empty());
    assert_eq!(sequential.stdout, parallel.stdout, "parallel output must be byte-identical");
}
