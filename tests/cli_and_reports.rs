//! End-to-end checks of the report emitters and the artifacts a CLI user
//! relies on: Verilog export of a mapped benchmark, dot export, and the
//! markdown/CSV batch emitters over real flow results.

use simap::core::{
    build_circuit, run_flow, to_csv, to_markdown, BatchRow, FlowConfig,
};
use simap::netlist::to_verilog;
use simap::sg::DotOptions;

fn flow(name: &str, limit: usize) -> (simap::sg::StateGraph, simap::core::FlowReport) {
    let stg = simap::stg::benchmark(name).expect("known");
    let sg = simap::stg::elaborate(&stg).expect("elaborates");
    let report = run_flow(&sg, &FlowConfig::with_limit(limit)).expect("flow");
    (sg, report)
}

#[test]
fn verilog_of_mapped_benchmark_is_structurally_sound() {
    let (_, report) = flow("hazard", 2);
    let circuit = build_circuit(&report.outcome.sg, &report.outcome.mc);
    let v = to_verilog(&circuit, &report.outcome.sg, "hazard");
    // Ports: inputs a, b; outputs x, y. Inserted x0 must be a wire.
    assert!(v.contains("input a"));
    assert!(v.contains("input b"));
    assert!(v.contains("output x"));
    assert!(v.contains("output y"));
    assert!(v.contains("wire x0"), "{v}");
    assert!(!v.contains("output x0"));
    // One C element for y.
    assert_eq!(v.matches("celement u_c").count(), 1);
    // Balanced module/endmodule ("endmodule" contains "module").
    assert_eq!(v.matches("endmodule").count(), 2);
}

#[test]
fn dot_of_final_graph_contains_inserted_signal() {
    let (_, report) = flow("hazard", 2);
    let dot = simap::sg::to_dot(
        &report.outcome.sg,
        &DotOptions { show_codes: true, ..Default::default() },
    );
    assert!(dot.contains("x0+"), "inserted signal's events must label arcs");
}

#[test]
fn emitters_cover_ni_and_success() {
    let (sg2, r2) = flow("half", 2);
    let rows = vec![BatchRow {
        name: "half".into(),
        states: sg2.state_count(),
        reports: vec![r2],
    }];
    let md = to_markdown(&[2], &rows);
    assert!(md.contains("| half |"));
    let csv = to_csv(&[2], &rows);
    assert!(csv.lines().count() >= 2);
}
