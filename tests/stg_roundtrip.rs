//! Round-trip property test of the `.g` writer/parser pair:
//! `parse_g(write_g(stg))` must reproduce the net — places, transitions,
//! arcs and the initial marking — for randomly pattern-composed safe
//! STGs. Identity is checked structurally (by names and labels): the
//! parser orders signals inputs-first, so ids may permute while the net
//! itself must not change.

use proptest::prelude::*;
use simap::sg::SignalKind;
use simap::stg::{parse_g, patterns, write_g, PlaceId, Stg, TransitionId};
use std::collections::{BTreeMap, BTreeSet};

/// A name-based structural fingerprint of an STG, invariant under
/// signal/place/transition renumbering.
#[derive(Debug, PartialEq, Eq)]
struct Signature {
    name: String,
    signals: BTreeMap<String, SignalKind>,
    /// Place name → initial token count.
    marking: BTreeMap<String, u8>,
    /// Transition label → (sorted pre place names, sorted post place
    /// names).
    arcs: BTreeMap<String, (BTreeSet<String>, BTreeSet<String>)>,
}

fn signature(stg: &Stg) -> Signature {
    let place_name = |p: PlaceId| stg.places()[p.0].name.clone();
    Signature {
        name: stg.name().to_string(),
        signals: stg.signals().iter().map(|s| (s.name.clone(), s.kind)).collect(),
        marking: stg
            .places()
            .iter()
            .zip(stg.initial_marking())
            .map(|(p, &t)| (p.name.clone(), t))
            .collect(),
        arcs: (0..stg.transition_count())
            .map(TransitionId)
            .map(|t| {
                (
                    stg.transition_label(t),
                    (
                        stg.pre(t).iter().map(|&p| place_name(p)).collect(),
                        stg.post(t).iter().map(|&p| place_name(p)).collect(),
                    ),
                )
            })
            .collect(),
    }
}

fn assert_roundtrip(stg: &Stg, context: &str) {
    let text = write_g(stg);
    let back = parse_g(&text)
        .unwrap_or_else(|e| panic!("{context}: rendered .g fails to parse: {e}\n{text}"));
    assert_eq!(signature(&back), signature(stg), "{context}: structure drifted\n{text}");
    // The parser numbers transitions in appearance order, so ids (and
    // therefore line order) may permute across trips — but the *net*
    // must stay fixed from the first trip on.
    let text2 = write_g(&back);
    let back2 = parse_g(&text2)
        .unwrap_or_else(|e| panic!("{context}: re-rendered .g fails to parse: {e}\n{text2}"));
    assert_eq!(signature(&back2), signature(stg), "{context}: second trip drifted");
}

/// A recipe mirroring the differential harness's pattern families.
#[derive(Debug, Clone, Copy)]
struct Part {
    kind: u8,
    a: usize,
    b: usize,
}

fn build_part(part: Part) -> Stg {
    match part.kind % 6 {
        0 => patterns::sequencer(2 + part.a % 5, None),
        1 => patterns::celement(2 + part.a % 4),
        2 => patterns::fork_join(1 + part.a % 3, 1 + part.b % 2),
        3 => patterns::pipeline(1 + part.a % 4),
        4 => patterns::choice(2 + part.a % 3),
        _ => patterns::shared_output_choice(2 + part.a % 2),
    }
}

fn arb_part() -> impl Strategy<Value = Part> {
    proptest::collection::vec(0usize..16, 3).prop_map(|v| Part {
        kind: v[0] as u8,
        a: v[1],
        b: v[2],
    })
}

proptest! {
    /// Pattern-composed nets round-trip through write_g/parse_g.
    #[test]
    fn pattern_nets_roundtrip(parts in proptest::collection::vec(arb_part(), 1..3)) {
        let stg = if parts.len() == 1 {
            build_part(parts[0])
        } else {
            let built: Vec<Stg> = parts.iter().copied().map(build_part).collect();
            patterns::parallel("t", &built)
        };
        assert_roundtrip(&stg, &format!("{parts:?}"));
    }
}

/// Every registry benchmark round-trips too (explicit places, multiple
/// transition instances, internal signals — the full format surface).
#[test]
fn registry_benchmarks_roundtrip() {
    for b in simap::stg::all_benchmarks() {
        assert_roundtrip(&b.stg, b.name);
    }
}

/// The round-tripped net elaborates to the same state space (ids may
/// permute; counts may not).
#[test]
fn roundtrip_preserves_the_state_space() {
    for part in [
        Part { kind: 0, a: 2, b: 0 },
        Part { kind: 1, a: 1, b: 0 },
        Part { kind: 3, a: 2, b: 0 },
        Part { kind: 4, a: 1, b: 0 },
    ] {
        let stg = build_part(part);
        let back = parse_g(&write_g(&stg)).expect("round-trips");
        let original = simap::stg::elaborate(&stg).expect("elaborates");
        let again = simap::stg::elaborate(&back).expect("round-tripped net elaborates");
        assert_eq!(original.state_count(), again.state_count(), "{part:?}");
        assert_eq!(original.arc_count(), again.arc_count(), "{part:?}");
    }
}
