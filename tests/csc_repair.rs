//! Integration tests for the CSC-repair extension: specifications without
//! Complete State Coding are repaired by state-signal insertion and then
//! flow through the full mapper.

use simap::core::{csc_conflicts, repair_csc, CscRepairConfig};
use simap::sg::{check_all, Event, Signal, SignalId, SignalKind, StateGraph, StateGraphBuilder};
use simap::Synthesis;

/// a+ ; b+ ; b- ; a- over two outputs: the textbook CSC conflict.
fn conflicted() -> StateGraph {
    let mut bd = StateGraphBuilder::new(
        "csc-demo",
        vec![Signal::new("a", SignalKind::Output), Signal::new("b", SignalKind::Output)],
    )
    .unwrap();
    let s0 = bd.add_state(0b00);
    let s1 = bd.add_state(0b01);
    let s2 = bd.add_state(0b11);
    let s3 = bd.add_state(0b01);
    bd.add_arc(s0, Event::rise(SignalId(0)), s1);
    bd.add_arc(s1, Event::rise(SignalId(1)), s2);
    bd.add_arc(s2, Event::fall(SignalId(1)), s3);
    bd.add_arc(s3, Event::fall(SignalId(0)), s0);
    bd.build(s0).unwrap()
}

#[test]
fn repaired_spec_maps_and_verifies() {
    let sg = conflicted();
    assert_eq!(csc_conflicts(&sg).len(), 1);
    let (fixed, inserted) = repair_csc(&sg, &CscRepairConfig::default()).expect("repairable");
    assert!(!inserted.is_empty());
    assert!(csc_conflicts(&fixed).is_empty());
    assert!(check_all(&fixed).is_ok());

    let report = Synthesis::from_state_graph(fixed).run().expect("flow succeeds");
    assert!(report.inserted.is_some());
    assert_eq!(report.verified, Some(true));

    // The pipeline performs the same repair inline.
    let verified = Synthesis::from_state_graph(sg)
        .config(&simap::Config::builder().repair_csc(true).build().unwrap())
        .elaborate()
        .expect("repairable")
        .covers()
        .expect("CSC holds after repair")
        .decompose()
        .expect("decomposes")
        .map()
        .verify()
        .expect("verifies");
    assert!(!verified.csc_repaired().is_empty());
    assert_eq!(verified.verdict(), Some(true));
}

#[test]
fn repair_preserves_interface_signals() {
    let sg = conflicted();
    let (fixed, inserted) = repair_csc(&sg, &CscRepairConfig::default()).expect("repairable");
    // Original signals unchanged, inserted signals are internal.
    for (i, s) in sg.signals().iter().enumerate() {
        assert_eq!(fixed.signals()[i].name, s.name);
        assert_eq!(fixed.signals()[i].kind, s.kind);
    }
    for name in &inserted {
        let id = fixed.signal_by_name(name).expect("exists");
        assert_eq!(fixed.signals()[id.0].kind, SignalKind::Internal);
    }
}

#[test]
fn longer_conflict_chain_repairs() {
    // a+ b+ b- b+/2? — instead: a two-conflict spec: a+ b+ b- a- a+/2
    // c+ a-/2 c- over outputs a, b, c: both halves revisit codes.
    let mut bd = StateGraphBuilder::new(
        "csc2",
        vec![
            Signal::new("a", SignalKind::Output),
            Signal::new("b", SignalKind::Output),
            Signal::new("c", SignalKind::Output),
        ],
    )
    .unwrap();
    let s0 = bd.add_state(0b000);
    let s1 = bd.add_state(0b001);
    let s2 = bd.add_state(0b011);
    let s3 = bd.add_state(0b001);
    let s4 = bd.add_state(0b000);
    let s5 = bd.add_state(0b001);
    let s6 = bd.add_state(0b101);
    let s7 = bd.add_state(0b100);
    let (a, b, c) = (SignalId(0), SignalId(1), SignalId(2));
    bd.add_arc(s0, Event::rise(a), s1);
    bd.add_arc(s1, Event::rise(b), s2);
    bd.add_arc(s2, Event::fall(b), s3);
    bd.add_arc(s3, Event::fall(a), s4);
    bd.add_arc(s4, Event::rise(a), s5);
    bd.add_arc(s5, Event::rise(c), s6);
    bd.add_arc(s6, Event::fall(a), s7);
    bd.add_arc(s7, Event::fall(c), s0);
    let sg = bd.build(s0).unwrap();
    let conflicts = csc_conflicts(&sg);
    assert!(conflicts.len() >= 2, "spec revisits several codes: {conflicts:?}");

    match repair_csc(&sg, &CscRepairConfig::default()) {
        Ok((fixed, inserted)) => {
            assert!(csc_conflicts(&fixed).is_empty());
            assert!(check_all(&fixed).is_ok());
            assert!(!inserted.is_empty());
            let report = Synthesis::from_state_graph(fixed)
                .config(&simap::Config::builder().literal_limit(3).build().unwrap())
                .run()
                .expect("flow");
            assert!(report.inserted.is_some());
        }
        Err(e) => panic!("expected repair to succeed: {e}"),
    }
}
