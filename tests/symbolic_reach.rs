//! Integration tests of the symbolic reachability strategy: the
//! huge-state-space workload (exact counts past the enumerative
//! engines' StateLimit), pipeline/engine integration, and the CLI
//! surface of `--strategy symbolic`.

use simap::stg::{patterns, reach_symbolic, ReachError, Stg};
use simap::{Config, Engine, ReachConfig, ReachStrategy};

fn symbolic_config() -> Config {
    Config::builder().reach_strategy(ReachStrategy::Symbolic).build().unwrap()
}

/// The acceptance-bar workload: a net whose reachable set blows far past
/// the enumerative engines' configured StateLimit still gets an exact
/// state count (and a CSC verdict) symbolically.
#[test]
fn symbolic_counts_beyond_the_enumerative_state_limit() {
    // Sixteen independent 4-state rings: 4^16 ≈ 4.3 billion markings.
    let parts: Vec<Stg> = (0..16).map(|_| patterns::sequencer(2, None)).collect();
    let stg = patterns::parallel("grid", &parts);
    let reach = ReachConfig { max_states: 50_000, ..ReachConfig::default() };

    // Every enumerative engine gives up at the limit…
    for strategy in [ReachStrategy::Packed, ReachStrategy::Explicit, ReachStrategy::Symbolic] {
        let config = ReachConfig { strategy, ..reach.clone() };
        let err = simap::stg::elaborate_with(&stg, &config).unwrap_err();
        assert!(matches!(err, ReachError::StateLimit { limit: 50_000, .. }), "{strategy}: {err}");
    }

    // …while the symbolic summary answers exactly.
    let sym = reach_symbolic(&stg, &reach).expect("symbolic summary");
    assert_eq!(sym.states, 4u64.pow(16));
    assert_eq!(sym.stats.strategy, ReachStrategy::Symbolic);
    assert!(sym.graph.is_none(), "nothing this size is materialized");
    assert!(sym.csc_conflict_codes.is_empty(), "independent rings keep CSC");
    assert!(sym.dead_transitions.is_empty());
    // Each of the 64 transitions is enabled in exactly 1/4 of the states.
    assert_eq!(sym.edges, 4u64.pow(16) / 4 * 64);
}

/// The pipeline runs end to end on the symbolic strategy and produces
/// the same report as the packed default.
#[test]
fn pipeline_runs_on_the_symbolic_strategy() {
    let symbolic = Engine::new(symbolic_config());
    let packed = Engine::new(Config::default());
    for name in ["hazard", "half", "dff"] {
        let s = symbolic.synthesize(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let p = packed.synthesize(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(s.inserted, p.inserted, "{name}");
        assert_eq!(s.si_cost, p.si_cost, "{name}");
        assert_eq!(s.non_si_cost, p.non_si_cost, "{name}");
        assert_eq!(s.verified, p.verified, "{name}");
    }
}

/// The engine cache keys symbolic elaborations separately (strategy and
/// materialization threshold are part of the identity) and replays them
/// on hits.
#[test]
fn engine_caches_symbolic_elaborations() {
    let engine = Engine::new(symbolic_config());
    let first = engine.benchmark("half").elaborate().unwrap();
    assert_eq!(first.reach_stats().unwrap().strategy, ReachStrategy::Symbolic);
    let again = engine.benchmark("half").elaborate().unwrap();
    assert_eq!(again.reach_stats().unwrap().strategy, ReachStrategy::Symbolic);
    let stats = engine.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // A different materialization threshold is a different cache entry.
    let other = engine.with_config(
        Config::builder()
            .reach_strategy(ReachStrategy::Symbolic)
            .reach_materialize_limit(3)
            .build()
            .unwrap(),
    );
    let err = other.benchmark("half").elaborate().unwrap_err();
    assert!(err.to_string().contains("materialization threshold"), "{err}");
    assert_eq!(engine.cache_stats().entries, 1, "failed elaborations are not cached");
}

/// `Elaborated::reach_stats` reports the symbolic strategy through the
/// whole stack, and the stats agree with the packed run's counters.
#[test]
fn symbolic_stats_flow_through_the_pipeline() {
    let symbolic = Engine::new(symbolic_config()).benchmark("vbe5b").elaborate().unwrap();
    let packed = Engine::new(Config::default()).benchmark("vbe5b").elaborate().unwrap();
    let s = symbolic.reach_stats().unwrap();
    let p = packed.reach_stats().unwrap();
    assert_eq!(s.strategy, ReachStrategy::Symbolic);
    assert_eq!((s.visited, s.interned, s.edges), (p.visited, p.interned, p.edges));
    assert_eq!(symbolic.state_graph().state_count(), packed.state_graph().state_count());
}

/// The symbolic summary agrees with itself across materialization
/// thresholds: gating the graph changes nothing about the counts.
#[test]
fn threshold_does_not_change_the_counts() {
    let stg = patterns::pipeline(4);
    let wide = reach_symbolic(&stg, &ReachConfig::default()).unwrap();
    let narrow =
        reach_symbolic(&stg, &ReachConfig { materialize_limit: 5, ..ReachConfig::default() })
            .unwrap();
    assert!(wide.graph.is_some() && narrow.graph.is_none());
    assert_eq!(wide.states, narrow.states);
    assert_eq!(wide.edges, narrow.edges);
    assert_eq!(wide.initial_code, narrow.initial_code);
    assert_eq!(wide.csc_conflict_codes, narrow.csc_conflict_codes);
    assert_eq!(wide.regions, narrow.regions);
}
