//! Fault injection: mutate correct implementations in targeted ways and
//! assert that the speed-independence verifier refuses each mutant. This
//! is the negative side of the paper's "all implementations have been
//! verified" claim — the verifier must actually be able to fail.

use simap::boolean::{Cover, Cube, Literal};
use simap::core::{build_circuit, synthesize_mc, McImpl, SignalBody};
use simap::netlist::{verify_speed_independence, VerifyConfig, VerifyError};
use simap::sg::StateGraph;

fn sg_of(name: &str) -> StateGraph {
    let stg = simap::stg::benchmark(name).expect("known benchmark");
    simap::stg::elaborate(&stg).expect("elaborates")
}

fn verify(circuit: &simap::netlist::Circuit, sg: &StateGraph) -> Result<(), VerifyError> {
    verify_speed_independence(circuit, sg, &VerifyConfig::default()).map(|_| ())
}

fn mc_of(sg: &StateGraph) -> McImpl {
    synthesize_mc(sg).expect("CSC holds")
}

/// Baseline: the unmutated implementations verify.
#[test]
fn unmutated_implementations_verify() {
    for name in ["hazard", "dff", "half", "chu133", "ebergen", "vbe5b"] {
        let sg = sg_of(name);
        let circuit = build_circuit(&sg, &mc_of(&sg));
        verify(&circuit, &sg).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Widening a set cover beyond its region fires outputs early.
#[test]
fn widened_set_cover_is_refuted() {
    let sg = sg_of("dff");
    let mut mc = mc_of(&sg);
    for s in &mut mc.signals {
        if let SignalBody::StandardC { set, .. } = &mut s.body {
            // Drop one literal from the set cover: it now covers states
            // where the output must not rise.
            let cube = set[0].cover.cubes()[0];
            let lit = cube.literals().next().expect("non-trivial cover");
            set[0].cover = Cover::from_cube(cube.without_var(lit.var));
        }
    }
    let circuit = build_circuit(&sg, &mc);
    assert!(verify(&circuit, &sg).is_err(), "widened cover must be refuted");
}

/// Swapping set and reset networks inverts the protocol.
#[test]
fn swapped_set_reset_is_refuted() {
    let sg = sg_of("dff");
    let mut mc = mc_of(&sg);
    for s in &mut mc.signals {
        if let SignalBody::StandardC { set, reset } = &mut s.body {
            std::mem::swap(set, reset);
        }
    }
    let circuit = build_circuit(&sg, &mc);
    assert!(verify(&circuit, &sg).is_err(), "swapped networks must be refuted");
}

/// A combinational cover with an inverted literal produces wrong outputs.
#[test]
fn inverted_literal_is_refuted() {
    let sg = sg_of("chu133");
    let mut mc = mc_of(&sg);
    let mut mutated = false;
    for s in &mut mc.signals {
        if let SignalBody::Combinational { cover, .. } = &mut s.body {
            if let Some(&cube) = cover.cubes().first() {
                if let Some(lit) = cube.literals().next() {
                    let flipped = cube
                        .without_var(lit.var)
                        .with_literal(lit.complement())
                        .expect("flip stays consistent");
                    *cover = Cover::from_cube(flipped);
                    mutated = true;
                    break;
                }
            }
        }
    }
    assert!(mutated, "chu133 has a combinational signal to mutate");
    let circuit = build_circuit(&sg, &mc);
    assert!(verify(&circuit, &sg).is_err(), "inverted literal must be refuted");
}

/// The naive non-SI decomposition of a wide AND *as separate signals
/// without insertion* is exactly what the paper forbids: emulate the
/// hazard by splitting a cover into an unacknowledged intermediate gate.
#[test]
fn unacknowledged_decomposition_is_refuted() {
    // 3-input C element: set = a0·a1·a2. Implement set as
    // (a0·a1) AND-chained through an extra net WITHOUT inserting the
    // signal at the SG level. The intermediate gate's transitions are
    // unacknowledged: the verifier must find a disabling or an early fire.
    let stg = simap::stg::patterns::celement(3);
    let sg = simap::stg::elaborate(&stg).expect("elaborates");
    let c = sg.signal_by_name("c").expect("output c");
    let a = |i: usize| sg.signal_by_name(&format!("a{i}")).expect("input");

    let mut circuit = simap::netlist::Circuit::new();
    let na: Vec<_> = (0..3).map(|i| circuit.add_net(format!("a{i}"), Some(a(i)))).collect();
    let nc = circuit.add_net("c", Some(c));
    let mid = circuit.add_net("mid", None);
    let nset = circuit.add_net("set", None);
    let nreset = circuit.add_net("reset", None);

    let and2 = |x, y| {
        Cover::from_cube(Cube::from_literals([Literal::pos(x), Literal::pos(y)]).expect("cube"))
    };
    let nand_inputs = [na[0], na[1]];
    circuit
        .add_gate(simap::netlist::sop_gate("mid", &and2(0, 1), |v| nand_inputs[v], mid))
        .expect("fresh");
    let set_inputs = [mid, na[2]];
    circuit
        .add_gate(simap::netlist::sop_gate("set", &and2(0, 1), |v| set_inputs[v], nset))
        .expect("fresh");
    let reset_cover = Cover::from_cube(
        Cube::from_literals([Literal::neg(0), Literal::neg(1), Literal::neg(2)]).expect("cube"),
    );
    circuit
        .add_gate(simap::netlist::sop_gate("reset", &reset_cover, |v| na[v], nreset))
        .expect("fresh");
    circuit
        .add_gate(simap::netlist::Gate {
            name: "c".into(),
            func: simap::netlist::GateFunc::CElement,
            fanin: vec![nset, nreset],
            output: nc,
        })
        .expect("fresh");

    let verdict = verify(&circuit, &sg);
    assert!(verdict.is_err(), "naive two-level split without SG insertion must exhibit a hazard");
}

/// The *correct* decomposition of the same circuit — produced by the
/// paper's algorithm — verifies, demonstrating the contrast.
#[test]
fn acknowledged_decomposition_verifies() {
    let stg = simap::stg::patterns::celement(3);
    let sg = simap::stg::elaborate(&stg).expect("elaborates");
    let result =
        simap::core::decompose(&sg, &simap::core::DecomposeConfig::with_limit(2)).expect("CSC");
    assert!(result.implementable);
    let circuit = build_circuit(&result.sg, &result.mc);
    verify_speed_independence(&circuit, &result.sg, &VerifyConfig::default())
        .expect("the SG-level decomposition is hazard-free");
}

/// Dropping the C element (treating a sequential signal as a wire from its
/// set network) deadlocks or misfires.
#[test]
fn missing_state_holding_is_refuted() {
    let sg = sg_of("dff");
    let mc = mc_of(&sg);
    let mut circuit = simap::netlist::Circuit::new();
    let nets: Vec<_> = sg
        .signals()
        .iter()
        .enumerate()
        .map(|(i, s)| circuit.add_net(s.name.clone(), Some(simap::sg::SignalId(i))))
        .collect();
    for s in &mc.signals {
        if let SignalBody::StandardC { set, .. } = &s.body {
            // Drive the signal directly from its set cover: no hold state.
            let gate =
                simap::netlist::sop_gate("q_wrong", &set[0].cover, |v| nets[v], nets[s.signal.0]);
            circuit.add_gate(gate).expect("fresh");
        }
    }
    assert!(verify(&circuit, &sg).is_err(), "wire-instead-of-C must be refuted");
}
