//! The paper's motivating workload: wide C-element joins (the `mr0` /
//! `vbe10b` family). Sweeps the join width `k`, decomposes each
//! specification into 2-input gates and reports how the insertion count
//! and cost scale — the "global acknowledgment decomposes 6–7 literal
//! gates" claim of §4.
//!
//! Run with: `cargo run --release --example wide_celement [max_k]`

use simap::stg::patterns;
use simap::{Config, Engine};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let max_k: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(6);
    let engine = Engine::new(Config::builder().literal_limit(2).build()?);

    println!(
        "{:>3} | {:>7} | {:>9} | {:>9} | {:>10} | {:>9}",
        "k", "states", "max gate", "inserted", "final max", "SI cost"
    );
    println!("{}", "-".repeat(62));

    for k in 2..=max_k {
        let covers = engine.stg(patterns::celement(k)).elaborate()?.covers()?;
        let states = covers.state_graph().state_count();
        let initial_max = covers.mc().max_complexity();
        let t = std::time::Instant::now();
        let decomposed = covers.decompose()?;
        let final_max = decomposed.mc().max_complexity();
        let inserted = decomposed.inserted().len();
        let implementable = decomposed.implementable();
        let mapped = decomposed.map();
        println!(
            "{:>3} | {:>7} | {:>9} | {:>9} | {:>10} | {:>9}  [{:.1?}]",
            k,
            states,
            initial_max,
            inserted,
            final_max,
            mapped.si_cost().to_string(),
            t.elapsed()
        );
        assert!(implementable, "C-element joins are 2-input implementable");
    }

    println!("\nEach k-literal cover decomposes into a C-element tree: the inserted");
    println!("signals are acknowledged globally (by the covers of other signals),");
    println!("which is exactly what local-acknowledgment methods cannot do (§4).");
    Ok(())
}
