//! The paper's motivating workload: wide C-element joins (the `mr0` /
//! `vbe10b` family). Sweeps the join width `k`, decomposes each
//! specification into 2-input gates and reports how the insertion count
//! and cost scale — the "global acknowledgment decomposes 6–7 literal
//! gates" claim of §4.
//!
//! Run with: `cargo run --release --example wide_celement [max_k]`

use simap::core::{decompose, si_cost, DecomposeConfig};
use simap::stg::{elaborate, patterns};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let max_k: usize = std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(6);

    println!(
        "{:>3} | {:>7} | {:>9} | {:>9} | {:>10} | {:>9}",
        "k", "states", "max gate", "inserted", "final max", "SI cost"
    );
    println!("{}", "-".repeat(62));

    for k in 2..=max_k {
        let stg = patterns::celement(k);
        let sg = elaborate(&stg)?;
        let before = simap::core::synthesize_mc(&sg)?;
        let t = std::time::Instant::now();
        let result = decompose(&sg, &DecomposeConfig::with_limit(2))?;
        let cost = si_cost(&result.mc, 2);
        println!(
            "{:>3} | {:>7} | {:>9} | {:>9} | {:>10} | {:>9}  [{:.1?}]",
            k,
            sg.state_count(),
            before.max_complexity(),
            result.inserted.len(),
            result.mc.max_complexity(),
            cost.to_string(),
            t.elapsed()
        );
        assert!(result.implementable, "C-element joins are 2-input implementable");
    }

    println!("\nEach k-literal cover decomposes into a C-element tree: the inserted");
    println!("signals are acknowledged globally (by the covers of other signals),");
    println!("which is exactly what local-acknowledgment methods cannot do (§4).");
    Ok(())
}
