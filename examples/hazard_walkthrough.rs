//! The paper's running example (`hazard.g`, Fig. 1 and Fig. 5) as a
//! guided walkthrough: regions, divisor legality, signal insertion,
//! resynthesis and final verification.
//!
//! Steps 1–4 use the algorithm primitives directly (that is what they are
//! for); step 5 runs the same flow through the staged [`Synthesis`]
//! pipeline.
//!
//! Run with: `cargo run --release --example hazard_walkthrough`

use simap::boolean::{generate_divisors, DivisorConfig};
use simap::core::{build_circuit, compute_insertion, insert_function, synthesize_mc};
use simap::sg::Event;
use simap::Synthesis;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let elaborated = Synthesis::from_benchmark("hazard").elaborate()?;
    let sg = elaborated.state_graph().clone();

    println!("step 1 — the specification (Fig. 1a):");
    for s in sg.states() {
        let succ: Vec<String> =
            sg.succ(s).iter().map(|&(e, t)| format!("{}->{}", sg.event_name(e), t.0)).collect();
        println!("  {:8} {}", sg.state_label(s), succ.join(" "));
    }

    println!("\nstep 2 — monotonous covers (the MC implementation):");
    let mc = synthesize_mc(&sg)?;
    let over = mc.gates_over(2);
    for (signal, event, cover, complexity) in &over {
        println!(
            "  cover of {} (signal {}): {} — {} literals, exceeds the 2-input library",
            sg.event_name(*event),
            sg.signals()[signal.0].name,
            cover.display_with(|v| sg.signals()[v].name.clone()),
            complexity
        );
    }
    let (_, _, target, _) = over.first().ok_or("hazard must have a complex cover")?.clone();

    println!("\nstep 3 — candidate divisors and their SIP legality (Fig. 1b-d):");
    for f in generate_divisors(&target, &DivisorConfig::default()) {
        let rendered = format!("{}", f.display_with(|v| sg.signals()[v].name.clone()));
        match compute_insertion(&sg, &f).map(|ins| (ins.er_plus.count(), ins.er_minus.count())) {
            Ok((p, m)) => println!("  {rendered:10} legal (|ER+|={p}, |ER-|={m})"),
            Err(e) => println!("  {rendered:10} ILLEGAL: {e}"),
        }
    }

    println!("\nstep 4 — inserting the best divisor at the SG level (Fig. 3):");
    let f = generate_divisors(&target, &DivisorConfig::default())
        .into_iter()
        .find(|f| compute_insertion(&sg, f).is_ok())
        .ok_or("at least one divisor must be legal")?;
    let (new_sg, _) = insert_function(&sg, &f, "w")?;
    let w = new_sg.signal_by_name("w").ok_or("inserted signal exists")?;
    println!(
        "  inserted w = {}; A' has {} states (was {}); w+ enabled in {} states",
        f.display_with(|v| sg.signals()[v].name.clone()),
        new_sg.state_count(),
        sg.state_count(),
        new_sg.states().filter(|&s| new_sg.enabled(s, Event::rise(w))).count()
    );

    println!("\nstep 5 — the full flow (Fig. 5): before/after netlists");
    println!("before:");
    print!("{}", build_circuit(&sg, &mc).render());
    let verified = elaborated.covers()?.decompose()?.map().verify()?;
    println!("after ({} insertion(s)):", verified.report().inserted.unwrap_or(0));
    print!("{}", verified.circuit().render());
    println!("\nverified speed-independent: {}", matches!(verified.verdict(), Some(true)));
    Ok(())
}
