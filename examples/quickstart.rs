//! Quickstart: map a benchmark specification onto a 2-input gate library
//! while preserving speed-independence, then print the resulting netlist.
//!
//! Run with: `cargo run --release --example quickstart [benchmark] [limit]`

use simap::core::{build_circuit, run_flow, FlowConfig};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "hazard".to_string());
    let limit: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2);

    // 1. Load the specification (a Signal Transition Graph).
    let stg = simap::stg::benchmark(&name)
        .ok_or_else(|| format!("unknown benchmark `{name}`; see `simap::stg::benchmark_names()`"))?;

    // 2. Elaborate into a State Graph and sanity-check the §2.1 properties.
    let sg = simap::stg::elaborate(&stg)?;
    let report = simap::sg::check_all(&sg);
    println!(
        "{name}: {} signals, {} states, speed-independent: {}, CSC: {}",
        sg.signal_count(),
        sg.state_count(),
        report.is_speed_independent(),
        report.has_csc()
    );

    // 3. Run the full technology-mapping flow.
    let flow = run_flow(&sg, &FlowConfig::with_limit(limit))?;
    match flow.inserted {
        Some(n) => println!("implementable with {limit}-literal gates after inserting {n} signal(s)"),
        None => println!("not implementable with {limit}-literal gates (n.i.)"),
    }
    for step in &flow.outcome.steps {
        println!("  inserted {} = {} (targeting {})", step.signal, step.divisor, step.target);
    }

    // 4. Print the final standard-C netlist and the cost accounting.
    println!("\nfinal netlist:");
    print!("{}", build_circuit(&flow.outcome.sg, &flow.outcome.mc).render());
    println!(
        "\ncost: SI {} vs non-SI baseline {} (literals/C-elements); verified SI: {:?}",
        flow.si_cost, flow.non_si_cost, flow.verified
    );
    Ok(())
}
