//! Quickstart: map a benchmark specification onto a 2-input gate library
//! while preserving speed-independence, then print the resulting netlist.
//!
//! Describe the run with one validated [`Config`], execute it through an
//! [`Engine`] (whose elaboration cache makes repeated runs cheap), and
//! either `.run()` for the classic one-shot report or step through the
//! typed stages to inspect intermediate artifacts (as done here to reuse
//! the mapped netlist without rebuilding it).
//!
//! Run with: `cargo run --release --example quickstart [benchmark] [limit]`

use simap::{Config, Engine};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "hazard".to_string());
    let limit: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(2);

    let engine = Engine::new(Config::builder().literal_limit(limit).build()?);

    // 1. Elaborate the specification (STG → state graph) and sanity-check
    //    the §2.1 properties.
    let elaborated = engine.benchmark(&name).elaborate()?;
    let properties = elaborated.properties();
    println!(
        "{name}: {} signals, {} states, speed-independent: {}, CSC: {}",
        elaborated.state_graph().signal_count(),
        elaborated.state_graph().state_count(),
        properties.is_speed_independent(),
        properties.has_csc()
    );

    // 2. Synthesize monotonous covers and run the decomposition loop.
    let decomposed = elaborated.covers()?.decompose()?;
    match decomposed.implementable() {
        true => println!(
            "implementable with {limit}-literal gates after inserting {} signal(s)",
            decomposed.inserted().len()
        ),
        false => println!("not implementable with {limit}-literal gates (n.i.)"),
    }
    for step in decomposed.steps() {
        println!("  inserted {} = {} (targeting {})", step.signal, step.divisor, step.target);
    }

    // 3. Map onto the standard-C architecture and verify the result.
    let verified = decomposed.map().verify()?;
    println!("\nfinal netlist:");
    print!("{}", verified.circuit().render());
    let report = verified.report();
    println!(
        "\ncost: SI {} vs non-SI baseline {} (literals/C-elements); verified SI: {:?}",
        report.si_cost, report.non_si_cost, report.verified
    );
    Ok(())
}
