//! Exports a benchmark's state graph (with the excitation/quiescent
//! regions of a chosen signal highlighted, Fig. 1-style) as Graphviz
//! `dot`, plus a cell-usage report of the mapped netlist against a target
//! library.
//!
//! Run with: `cargo run --release --example export_dot [benchmark] [signal]`

use simap::sg::{regions_of, DotOptions, Event};
use simap::Engine;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "hazard".to_string());
    let engine = Engine::default();
    let elaborated = engine.benchmark(&name).elaborate()?;
    let sg = elaborated.state_graph();

    let signal = match args.next() {
        Some(s) => sg.signal_by_name(&s).ok_or("unknown signal")?,
        None => *sg.implementable_signals().last().ok_or("no outputs")?,
    };

    let mut highlight = regions_of(sg, Event::rise(signal));
    highlight.extend(regions_of(sg, Event::fall(signal)));
    let dot = simap::sg::to_dot(sg, &DotOptions { highlight, show_codes: true });
    println!("{dot}");

    // Map and report cell usage against the engine's target library.
    let mapped = elaborated.covers()?.decompose()?.map();
    let library = engine.library();
    eprintln!("# cell report for `{name}` against the {} library:", library.name);
    for (shape, count) in library.cell_report(mapped.circuit()) {
        eprintln!("#   {count:3} x {shape}");
    }
    let misfits = library.misfits(mapped.circuit());
    eprintln!("# gates not fitting the library: {}", misfits.len());
    Ok(())
}
