//! Exports a benchmark's state graph (with the excitation/quiescent
//! regions of a chosen signal highlighted, Fig. 1-style) as Graphviz
//! `dot`, plus a cell-usage report of the mapped netlist against a target
//! library.
//!
//! Run with: `cargo run --release --example export_dot [benchmark] [signal]`

use simap::netlist::Library;
use simap::sg::{regions_of, DotOptions, Event};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "hazard".to_string());
    let stg = simap::stg::benchmark(&name).ok_or("unknown benchmark")?;
    let sg = simap::stg::elaborate(&stg)?;

    let signal = match args.next() {
        Some(s) => sg.signal_by_name(&s).ok_or("unknown signal")?,
        None => *sg.implementable_signals().last().ok_or("no outputs")?,
    };

    let mut highlight = regions_of(&sg, Event::rise(signal));
    highlight.extend(regions_of(&sg, Event::fall(signal)));
    let dot = simap::sg::to_dot(&sg, &DotOptions { highlight, show_codes: true });
    println!("{dot}");

    // Map and report cell usage against the 2-input library.
    let flow = simap::core::run_flow(&sg, &simap::core::FlowConfig::with_limit(2))?;
    let circuit = simap::core::build_circuit(&flow.outcome.sg, &flow.outcome.mc);
    let library = Library::two_input();
    eprintln!("# cell report for `{name}` against the {} library:", library.name);
    for (shape, count) in library.cell_report(&circuit) {
        eprintln!("#   {count:3} x {shape}");
    }
    let misfits = library.misfits(&circuit);
    eprintln!("# gates not fitting the library: {}", misfits.len());
    Ok(())
}
