//! Complete State Coding repair: a specification whose states revisit a
//! code is extended with an internal state signal, then mapped and
//! verified — the "new signal can be added either in order to satisfy the
//! CSC condition, or to break up a complex gate" of §2.3.
//!
//! Run with: `cargo run --release --example csc_repair`

use simap::core::{csc_conflicts, run_flow, FlowConfig};
use simap::sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The textbook conflict: a+ ; b+ ; b- ; a- revisits code 01.
    let mut bd = StateGraphBuilder::new(
        "csc-demo",
        vec![Signal::new("a", SignalKind::Output), Signal::new("b", SignalKind::Output)],
    )?;
    let s0 = bd.add_state(0b00);
    let s1 = bd.add_state(0b01);
    let s2 = bd.add_state(0b11);
    let s3 = bd.add_state(0b01); // same code as s1, different future
    bd.add_arc(s0, Event::rise(SignalId(0)), s1);
    bd.add_arc(s1, Event::rise(SignalId(1)), s2);
    bd.add_arc(s2, Event::fall(SignalId(1)), s3);
    bd.add_arc(s3, Event::fall(SignalId(0)), s0);
    let sg = bd.build(s0)?;

    println!("conflicts before repair: {:?}", csc_conflicts(&sg));

    // Without repair the flow reports the CSC violation...
    let strict = run_flow(&sg, &FlowConfig::with_limit(2));
    println!("strict flow: {}", match &strict {
        Ok(_) => "unexpectedly succeeded".to_string(),
        Err(e) => format!("rejected: {e}"),
    });

    // ...with repair enabled a state signal is inserted automatically.
    let mut config = FlowConfig::with_limit(2);
    config.repair_csc = true;
    let report = run_flow(&sg, &config)?;
    println!(
        "repaired flow: inserted-for-decomposition={:?}, SI cost {}, verified {:?}",
        report.inserted, report.si_cost, report.verified
    );
    println!("\nfinal netlist:");
    print!(
        "{}",
        simap::core::build_circuit(&report.outcome.sg, &report.outcome.mc).render()
    );
    Ok(())
}
