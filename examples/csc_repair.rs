//! Complete State Coding repair: a specification whose states revisit a
//! code is extended with an internal state signal, then mapped and
//! verified — the "new signal can be added either in order to satisfy the
//! CSC condition, or to break up a complex gate" of §2.3.
//!
//! Without repair the pipeline rejects the specification with
//! [`simap::Error::CscViolation`] carrying the full conflict list; with
//! `Config::builder().repair_csc(true)` the state signal is inserted
//! automatically.
//!
//! Run with: `cargo run --release --example csc_repair`

use simap::sg::{Event, Signal, SignalId, SignalKind, StateGraphBuilder};
use simap::{Config, Synthesis};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The textbook conflict: a+ ; b+ ; b- ; a- revisits code 01.
    let mut bd = StateGraphBuilder::new(
        "csc-demo",
        vec![Signal::new("a", SignalKind::Output), Signal::new("b", SignalKind::Output)],
    )?;
    let s0 = bd.add_state(0b00);
    let s1 = bd.add_state(0b01);
    let s2 = bd.add_state(0b11);
    let s3 = bd.add_state(0b01); // same code as s1, different future
    bd.add_arc(s0, Event::rise(SignalId(0)), s1);
    bd.add_arc(s1, Event::rise(SignalId(1)), s2);
    bd.add_arc(s2, Event::fall(SignalId(1)), s3);
    bd.add_arc(s3, Event::fall(SignalId(0)), s0);
    let sg = bd.build(s0)?;

    // Without repair the flow reports the CSC violation...
    match Synthesis::from_state_graph(sg.clone()).run() {
        Ok(_) => println!("strict flow: unexpectedly succeeded"),
        Err(e) => {
            println!("strict flow rejected: {e}");
            println!("conflicting state pairs: {:?}", e.csc_conflicts());
        }
    }

    // ...with repair enabled a state signal is inserted automatically.
    let config = Config::builder().repair_csc(true).build()?;
    let verified = Synthesis::from_state_graph(sg)
        .config(&config)
        .elaborate()?
        .covers()?
        .decompose()?
        .map()
        .verify()?;
    let report = verified.report();
    println!(
        "repaired flow: csc signal(s) {:?}, inserted-for-decomposition={:?}, SI cost {}, \
         verified {:?}",
        verified.csc_repaired(),
        report.inserted,
        report.si_cost,
        report.verified
    );
    println!("\nfinal netlist:");
    print!("{}", verified.circuit().render());
    Ok(())
}
