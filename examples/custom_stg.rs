//! Mapping a user-written specification: parse a `.g` Signal Transition
//! Graph from text (or a file passed as the first argument), elaborate it,
//! inspect its regions and map it.
//!
//! Run with: `cargo run --release --example custom_stg [spec.g]`

use simap::sg::{regions_of, Event};
use simap::Synthesis;
use std::error::Error;

/// A two-stage asynchronous pipeline controller, written in the same `.g`
/// dialect the benchmark suite uses.
const PIPELINE_G: &str = "\
.model pipeline2
.inputs req
.outputs a0 a1 done
.graph
req+ a0+
a0+ a1+
a1+ done+
done+ req-
req- a0-
a0- a1-
a1- done-
done- req+
.marking { <done-,req+> }
.end
";

fn main() -> Result<(), Box<dyn Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => PIPELINE_G.to_string(),
    };

    let stg = simap::stg::parse_g(&source)?;
    println!(
        "parsed `{}`: {} transitions, {} places",
        stg.name(),
        stg.transitions().len(),
        stg.places().len()
    );

    // Round-trip sanity: the writer emits the same dialect.
    let roundtrip = simap::stg::parse_g(&simap::stg::write_g(&stg))?;
    assert_eq!(roundtrip.transitions().len(), stg.transitions().len());

    let elaborated = Synthesis::from_stg(stg).elaborate()?;
    let report = elaborated.properties();
    if !report.is_ok() {
        for v in &report.violations {
            eprintln!("property violation: {v}");
        }
        return Err("specification is not implementable".into());
    }

    // Inspect the §2.2 regions of every implementable signal.
    let sg = elaborated.state_graph();
    for signal in sg.implementable_signals() {
        for event in [Event::rise(signal), Event::fall(signal)] {
            for region in regions_of(sg, event) {
                println!(
                    "ER{}({}): {} excitation states, {} quiescent states, triggers {:?}",
                    region.index,
                    sg.event_name(event),
                    region.er.count(),
                    region.qr.count(),
                    region.trigger_events(sg).iter().map(|&e| sg.event_name(e)).collect::<Vec<_>>()
                );
            }
        }
    }

    let report = elaborated.covers()?.decompose()?.map().verify()?.into_report();
    println!(
        "\n2-input mapping: inserted {:?}, SI cost {}, verified {:?}",
        report.inserted, report.si_cost, report.verified
    );
    Ok(())
}
